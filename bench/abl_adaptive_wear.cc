/**
 * @file
 * Ablation — closed-loop wear management (runtime/health_policy.hh)
 * versus the open-loop static placement of abl_endurance.
 *
 * Each cell runs an EnduranceCampaign on ONE deterministic sample
 * path per operating point (the seed is a function of eta only, so
 * every policy variant in a column replays the same fault stream up
 * to the point where its decisions diverge). The sweep crosses the
 * policy knobs (rows: static, adaptive at cadence 1 and 4 with
 * quarantine, adaptive with quarantine disabled) against Weibull
 * characteristic-life operating points (columns). Adaptive cells
 * snapshot bankHealth()/wearSummaries() between rounds, re-run
 * Planner::observeWear, proactively migrate the live operands off
 * subarrays whose worst track crossed 1.5 x eta (the leading
 * indicator — the per-mat spare pool is a cliff, not a slope, at
 * shape 6), and quarantine subarrays with an exhausted mat out of
 * the compute/staging sets.
 *
 * Three properties are asserted (nonzero exit on violation):
 *  - the recovery invariant: every VPC not marked Failed is
 *    bit-exact against its golden twin, including migrated operand
 *    regions and everything after a quarantine re-plan;
 *  - lifetime strictly extends: on every operating point where the
 *    static policy fails, the full adaptive policy (cadence 1,
 *    quarantine on) first fails after strictly more PROGRAM deposit
 *    pulses (migration traffic is accounted separately and cannot
 *    inflate the score; surviving the whole campaign counts as a
 *    later failure);
 *  - the claim is non-vacuous: the static baseline must fail on at
 *    least two operating points.
 *
 * Every cell is deterministic in its config, so the table and JSON
 * report are identical at any STREAMPIM_JOBS and at any
 * campaign-internal engineJobs.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/fault_campaign.hh"
#include "core/report.hh"
#include "parallel/sweep.hh"

using namespace streampim;
using namespace streampim::bench;

namespace
{

struct OperatingPoint
{
    const char *name;
    double endurance; //!< Weibull characteristic life (writes/track)
};

struct PolicyVariant
{
    const char *name;
    bool enabled;
    unsigned cadence;
    bool quarantine;
};

/** First-failure program-deposit volume, "never failed" = infinity. */
double
lifetimeProgramDeposits(const SweepCellResult &c)
{
    if (c.metrics.at("first_failed_round") < 0.0)
        return 1e30;
    return c.metrics.at("first_failed_program_writes");
}

std::string
pad2(unsigned v)
{
    return (v < 10 ? "0" : "") + std::to_string(v);
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation: closed-loop adaptive wear management "
                "(health-driven re-planning,\noperand migration and "
                "subarray quarantine) vs static placement\n\n");

    const std::vector<PolicyVariant> variants = {
        {"static", false, 1, true},
        {"cad1", true, 1, true},
        {"cad4", true, 4, true},
        {"noquar", true, 1, false},
    };
    const std::vector<OperatingPoint> points = {
        {"eta450", 450.0},
        {"eta600", 600.0},
    };
    const unsigned rounds = 60;

    SweepRunner sweep("abl_adaptive_wear", argc, argv);
    for (const auto &v : variants)
        for (const auto &pt : points) {
            EnduranceCampaignConfig cfg;
            // Shift faults off: every escalation is wear-driven.
            cfg.base.pStep = 0.0;
            cfg.base.pWrite0 = 1e-4;
            cfg.base.writeEndurance = pt.endurance;
            cfg.base.weibullShape = 6.0;
            cfg.base.redepositRetryBudget = 3;
            cfg.base.remapAfterExhaustions = 1;
            cfg.base.spareTracks = 4;
            cfg.rounds = rounds;
            // One sample path per column: the seed depends on the
            // operating point only, never on the policy row, so the
            // static and adaptive campaigns replay the identical
            // fault stream until their placements diverge.
            cfg.base.seed =
                0xadab7ULL ^ std::uint64_t(pt.endurance);
            cfg.adaptive.enabled = v.enabled;
            cfg.adaptive.cadence = v.cadence;
            cfg.adaptive.migrationSpareThreshold = 0;
            // Leading trigger: evacuate once the worst track passes
            // 1.5 x eta. At shape 6 the Weibull hazard is a cliff,
            // so the spare pool (the lagging signal) stays full
            // until the round everything dies.
            cfg.adaptive.migrationWearThreshold =
                std::uint64_t(pt.endurance * 1.5);
            cfg.adaptive.quarantine = v.quarantine;
            sweep.add(v.name, pt.name, [cfg] {
                auto res = runEnduranceCampaign(cfg);
                SweepCellResult cell;
                cell.value = double(res.firstFailedVpc);
                cell.metrics["clean"] = res.clean;
                cell.metrics["corrected"] = res.corrected;
                cell.metrics["retried"] = res.retried;
                cell.metrics["failed"] = res.failed;
                cell.metrics["mismatched_recovered"] =
                    res.mismatchedRecovered;
                cell.metrics["first_failed_round"] =
                    double(res.firstFailedRound);
                cell.metrics["first_failed_writes"] =
                    double(res.firstFailedDeposits);
                cell.metrics["first_failed_program_writes"] =
                    double(res.firstFailedProgramDeposits);
                cell.metrics["deposit_pulses"] =
                    double(res.stats.depositPulses);
                cell.metrics["write_faults_injected"] =
                    double(res.stats.writeFaultsInjected);
                cell.metrics["redeposits"] =
                    double(res.stats.redeposits);
                cell.metrics["track_remaps"] =
                    double(res.stats.trackRemaps);
                cell.metrics["policy_evaluations"] =
                    double(res.policyEvaluations);
                cell.metrics["migrations"] = double(res.migrations);
                cell.metrics["migrations_failed"] =
                    double(res.migrationFailed);
                cell.metrics["migration_bytes"] =
                    double(res.migrationBytes);
                cell.metrics["migration_writes"] =
                    double(res.migrationDeposits);
                cell.metrics["quarantined_subarrays"] =
                    double(res.quarantinedSubarrays);
                for (std::size_t i = 0; i < res.finalHomes.size();
                     ++i)
                    cell.metrics["final_home" + std::to_string(i)] =
                        double(res.finalHomes[i]);
                // Degradation trajectory: the lifetime curve the
                // policy acts on, one point per round.
                for (unsigned r = 0; r < res.rounds(); ++r) {
                    const EnduranceRound &rr = res.perRound[r];
                    const std::string p = "round" + pad2(r) + "_";
                    cell.metrics[p + "remaining_spares"] =
                        double(rr.remainingSpares);
                    cell.metrics[p + "max_wear"] =
                        double(rr.maxWear);
                    cell.metrics[p + "failed"] = double(rr.failed);
                    cell.metrics[p + "migrations"] =
                        double(rr.migrations);
                    cell.metrics[p + "quarantined"] =
                        double(rr.newlyQuarantined);
                }
                // Reserved perf metric: committed deposit pulses
                // are the functional unit of work.
                cell.metrics["functional_ops"] =
                    double(res.stats.depositPulses);
                return cell;
            });
        }
    sweep.run();

    bool invariant_ok = true;
    bool lifetime_ok = true;
    unsigned baseline_failures = 0;
    for (const auto &pt : points) {
        std::printf("characteristic life %s (%.0f writes/track, "
                    "shape 6, wear threshold %.0f):\n",
                    pt.name, pt.endurance, pt.endurance * 1.5);
        Table t({"policy", "failed", "1st fail round",
                 "1st fail program writes", "migr", "migr fail",
                 "migr writes", "quar", "evals"});
        for (const auto &v : variants) {
            const auto &c = sweep.cell(v.name, pt.name);
            if (c.metrics.at("mismatched_recovered") != 0.0)
                invariant_ok = false;
            const bool survived =
                c.metrics.at("first_failed_round") < 0.0;
            t.addRow(
                {v.name, fmt(c.metrics.at("failed"), 0),
                 survived ? std::string("-")
                          : fmt(c.metrics.at("first_failed_round"),
                                0),
                 survived
                     ? std::string("-")
                     : fmt(c.metrics.at(
                               "first_failed_program_writes"),
                           0),
                 fmt(c.metrics.at("migrations"), 0),
                 fmt(c.metrics.at("migrations_failed"), 0),
                 fmt(c.metrics.at("migration_writes"), 0),
                 fmt(c.metrics.at("quarantined_subarrays"), 0),
                 fmt(c.metrics.at("policy_evaluations"), 0)});
        }
        t.print();

        // Degradation curves: remaining spares per round, the
        // trajectory view (Gomez-Luna et al.) of the same data.
        for (const char *name : {"static", "cad1"}) {
            const auto &c = sweep.cell(name, pt.name);
            std::printf("%-7s spares:", name);
            for (unsigned r = 0; r < rounds; r += 6) {
                auto it = c.metrics.find("round" + pad2(r) +
                                         "_remaining_spares");
                if (it == c.metrics.end())
                    break;
                std::printf(" %3.0f", it->second);
            }
            std::printf("\n");
        }

        // The gate: wherever static placement dies inside the
        // campaign, the full adaptive policy must first-fail after
        // strictly more program deposits.
        const auto &base = sweep.cell("static", pt.name);
        if (base.metrics.at("first_failed_round") >= 0.0) {
            ++baseline_failures;
            const auto &full = sweep.cell("cad1", pt.name);
            if (!(lifetimeProgramDeposits(full) >
                  lifetimeProgramDeposits(base)))
                lifetime_ok = false;
        }
        std::printf("\n");
    }

    std::printf("%s: every VPC not marked Failed was bit-exact "
                "against its golden run,\nincluding migrated operand "
                "regions and post-quarantine placements.\n",
                invariant_ok ? "invariant held"
                             : "INVARIANT VIOLATED");
    lifetime_ok = lifetime_ok && baseline_failures >= 2;
    std::printf("%s: on every operating point where static "
                "placement failed (%u/%zu, need >= 2),\nthe adaptive "
                "policy first failed after strictly more program "
                "deposit pulses.\n",
                lifetime_ok ? "adaptive extended lifetime"
                            : "ADAPTIVE LIFETIME CLAIM VIOLATED",
                baseline_failures, points.size());

    // Opt-in (STREAMPIM_PERF_REF=1): serial reference timing +
    // byte-identity re-check of every cell, recorded in the report's
    // perf section as the engine-speedup trajectory.
    sweep.measureSerialReference();
    printPerf("deposit pulses", sweep.functionalOps(),
              sweep.wallSeconds());
    sweep.note("rounds_per_cell", rounds);
    sweep.note("cell_unit", "first_failed_vpc_index");
    sweep.note("wear_threshold_factor", 1.5);
    sweep.note("invariant_held", invariant_ok ? 1.0 : 0.0);
    sweep.note("adaptive_extended_lifetime",
               lifetime_ok ? 1.0 : 0.0);
    sweep.writeReport();
    return invariant_ok && lifetime_ok ? 0 : 1;
}
