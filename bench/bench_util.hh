/**
 * @file
 * Shared helpers for the figure/table benches: environment-driven
 * run sizes, aligned table printing, and geometric means.
 *
 * Every bench prints the paper's reported number next to the
 * measured one; absolute values differ (our substrate is this
 * simulator, not the authors' gem5 testbed) but the shape — who
 * wins, by roughly what factor — is the reproduction target.
 */

#ifndef STREAMPIM_BENCH_BENCH_UTIL_HH_
#define STREAMPIM_BENCH_BENCH_UTIL_HH_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"

namespace streampim::bench
{

/** Base dimension: 256 for quick runs; STREAMPIM_DIM=2000 = paper. */
inline unsigned
runDim()
{
    return unsigned(Config::envInt("STREAMPIM_DIM", 256));
}

/** Whether to run the full kernel set / sweeps. */
inline bool
fullRun()
{
    return Config::envFlag("STREAMPIM_FULL");
}

/** Geometric mean of a vector of positive values. */
inline double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0;
                 c < row.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            std::string out;
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                std::string cell =
                    c < cells.size() ? cells[c] : "";
                cell.resize(width[c], ' ');
                out += cell;
                out += "  ";
            }
            std::printf("%s\n", out.c_str());
        };
        line(headers_);
        std::string rule;
        for (std::size_t c = 0; c < headers_.size(); ++c)
            rule += std::string(width[c], '-') + "  ";
        std::printf("%s\n", rule.c_str());
        for (const auto &row : rows_)
            line(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Wall-clock stopwatch for bench perf summaries. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last reset()). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Rate with a zero-elapsed guard (ops in zero time reads as 0). */
inline double
perSecond(double ops, double seconds)
{
    return seconds > 0.0 ? ops / seconds : 0.0;
}

/**
 * Print the one-line perf footer the benches share: how fast the
 * simulator itself ran, next to (never mixed into) the simulated
 * results above it.
 */
inline void
printPerf(const char *what, double ops, double seconds)
{
    std::printf("perf: %.0f %s in %.3f s (%.3e %s/s)\n", ops, what,
                seconds, perSecond(ops, seconds), what);
}

/** Format a double with the given precision. */
inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** Format in scientific notation. */
inline std::string
fmtSci(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2e", v);
    return buf;
}

} // namespace streampim::bench

#endif // STREAMPIM_BENCH_BENCH_UTIL_HH_
