/**
 * @file
 * Fig. 19 — execution time breakdown of CORUSCANT vs StPIM,
 * normalized to StPIM.
 *
 * Paper shape: CORUSCANT spends 81.82% of time on exclusive data
 * transfer (read/write/shift); StPIM's pipelining hides transfer
 * under processing, leaving <1% exclusive transfer.
 */

#include <cstdio>

#include "baselines/coruscant.hh"
#include "baselines/stream_pim_platform.hh"
#include "bench_util.hh"
#include "parallel/sweep.hh"
#include "workloads/polybench.hh"

using namespace streampim;
using namespace streampim::bench;

int
main(int argc, char **argv)
{
    const unsigned dim = runDim();
    std::printf("Fig. 19: execution time breakdown (dim=%u), "
                "normalized to StPIM total\n\n", dim);

    SweepRunner sweep("fig19_time_breakdown", argc, argv);
    for (PolybenchKernel k : allPolybenchKernels()) {
        sweep.add(polybenchName(k), "StPIM", [k, dim] {
            StreamPimPlatform stpim(SystemConfig::paperDefault());
            PlatformResult r = stpim.run(makePolybench(k, dim));
            // The executor's coverage analysis gives genuine
            // exclusive and overlapped wall-clock intervals.
            SweepCellResult res;
            res.value = r.seconds;
            res.metrics["excl_transfer_pct"] =
                r.timeCategory("excl_transfer") / r.seconds * 100;
            res.metrics["process_pct"] =
                r.timeCategory("excl_process") / r.seconds * 100;
            res.metrics["overlapped_pct"] =
                r.timeCategory("overlapped") / r.seconds * 100;
            return res;
        });
        sweep.add(polybenchName(k), "CORUSCANT", [k, dim] {
            CoruscantPlatform coruscant;
            PlatformResult r = coruscant.run(makePolybench(k, dim));
            // CORUSCANT serializes conversion with computation
            // inside each arithmetic op; its transfer time is
            // fully exposed.
            double xfer = r.timeCategory("read") +
                          r.timeCategory("write") +
                          r.timeCategory("shift");
            SweepCellResult res;
            res.value = r.seconds;
            res.metrics["excl_transfer_pct"] =
                xfer / r.seconds * 100;
            res.metrics["process_pct"] =
                r.timeCategory("process") / r.seconds * 100;
            res.metrics["overlapped_pct"] = 0.0;
            return res;
        });
    }
    sweep.run();

    Table t({"workload", "platform", "excl-transfer%", "process%",
             "overlapped%", "total (x StPIM)"});
    double cor_xfer_sum = 0, st_xfer_sum = 0;
    unsigned n = 0;
    for (const auto &row : sweep.rows()) {
        const auto &cr = sweep.cell(row, "CORUSCANT");
        const auto &sp = sweep.cell(row, "StPIM");
        cor_xfer_sum += cr.metrics.at("excl_transfer_pct");
        st_xfer_sum += sp.metrics.at("excl_transfer_pct");
        n++;
        t.addRow({row, "CORUSCANT",
                  fmt(cr.metrics.at("excl_transfer_pct"), 1),
                  fmt(cr.metrics.at("process_pct"), 1), "0.0",
                  fmt(cr.value / sp.value, 2) + "x"});
        t.addRow({"", "StPIM",
                  fmt(sp.metrics.at("excl_transfer_pct"), 1),
                  fmt(sp.metrics.at("process_pct"), 1),
                  fmt(sp.metrics.at("overlapped_pct"), 1),
                  "1.00x"});
    }
    t.print();

    std::printf("\naverage exclusive transfer: CORUSCANT %.1f%% "
                "(paper 81.8%%), StPIM %.1f%% (paper <1%%)\n",
                cor_xfer_sum / n, st_xfer_sum / n);

    sweep.note("avg_excl_transfer_coruscant_pct", cor_xfer_sum / n);
    sweep.note("avg_excl_transfer_stpim_pct", st_xfer_sum / n);
    sweep.note("paper_coruscant_pct", 81.82);
    sweep.note("paper_stpim_pct", 1.0);
    sweep.writeReport();
    return 0;
}
