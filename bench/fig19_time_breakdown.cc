/**
 * @file
 * Fig. 19 — execution time breakdown of CORUSCANT vs StPIM,
 * normalized to StPIM.
 *
 * Paper shape: CORUSCANT spends 81.82% of time on exclusive data
 * transfer (read/write/shift); StPIM's pipelining hides transfer
 * under processing, leaving <1% exclusive transfer.
 */

#include <cstdio>

#include "baselines/coruscant.hh"
#include "baselines/stream_pim_platform.hh"
#include "bench_util.hh"
#include "workloads/polybench.hh"

using namespace streampim;
using namespace streampim::bench;

int
main()
{
    const unsigned dim = runDim();
    std::printf("Fig. 19: execution time breakdown (dim=%u), "
                "normalized to StPIM total\n\n", dim);

    CoruscantPlatform coruscant;
    StreamPimPlatform stpim(SystemConfig::paperDefault());

    Table t({"workload", "platform", "excl-transfer%", "process%",
             "overlapped%", "total (x StPIM)"});

    double cor_xfer_sum = 0, st_xfer_sum = 0;
    unsigned n = 0;
    for (PolybenchKernel k : allPolybenchKernels()) {
        TaskGraph g = makePolybench(k, dim);

        PlatformResult sp = stpim.run(g);
        double st_total = sp.seconds;
        // The executor's coverage analysis gives genuine exclusive
        // and overlapped wall-clock intervals.
        double st_excl_x = sp.timeCategory("excl_transfer");
        double st_proc = sp.timeCategory("excl_process");
        double st_ovl = sp.timeCategory("overlapped");
        st_xfer_sum += st_excl_x / st_total * 100;

        PlatformResult cr = coruscant.run(g);
        // CORUSCANT serializes conversion with computation inside
        // each arithmetic op; its transfer time is fully exposed.
        double cr_xfer = cr.timeCategory("read") +
                         cr.timeCategory("write") +
                         cr.timeCategory("shift");
        double cr_proc = cr.timeCategory("process");
        cor_xfer_sum += cr_xfer / cr.seconds * 100;
        n++;

        t.addRow({polybenchName(k), "CORUSCANT",
                  fmt(cr_xfer / cr.seconds * 100, 1),
                  fmt(cr_proc / cr.seconds * 100, 1), "0.0",
                  fmt(cr.seconds / st_total, 2) + "x"});
        t.addRow({"", "StPIM",
                  fmt(st_excl_x / st_total * 100, 1),
                  fmt(st_proc / st_total * 100, 1),
                  fmt(st_ovl / st_total * 100, 1), "1.00x"});
    }
    t.print();

    std::printf("\naverage exclusive transfer: CORUSCANT %.1f%% "
                "(paper 81.8%%), StPIM %.1f%% (paper <1%%)\n",
                cor_xfer_sum / n, st_xfer_sum / n);
    return 0;
}
