/**
 * @file
 * Ablation — shift-fault exposure vs bus pulse length, with and
 * without the guard-domain realignment (Secs. III-D and VI).
 *
 * The segmented bus bounds each current pulse to one segment, which
 * (a) keeps the per-pulse fault probability low and (b) makes every
 * fault a correctable +-1 misalignment. This bench quantifies both
 * effects by Monte-Carlo over the fault model.
 */

#include <cstdio>

#include "bench_util.hh"
#include "parallel/sweep.hh"
#include "rm/fault.hh"
#include "rm/params.hh"
#include "rm/redundancy.hh"

using namespace streampim;
using namespace streampim::bench;

int
main(int argc, char **argv)
{
    std::printf("Ablation: shift faults vs pulse length "
                "(p_step = 4.5e-5 per domain step)\n\n");

    RmParams rm;
    // A transfer of one full bus length per trial, many trials.
    const std::uint64_t total_steps = rm.busLengthDomains;
    const int trials = 4000;
    const std::vector<unsigned> pulse_lengths = {64, 256, 1024,
                                                 4096};

    // Each cell owns a deterministic per-pulse-length Rng, so the
    // Monte-Carlo streams are independent of cell execution order
    // and the table is identical at any STREAMPIM_JOBS.
    SweepRunner sweep("abl_shift_faults", argc, argv);
    for (unsigned pulse : pulse_lengths)
        sweep.add(std::to_string(pulse), "monte-carlo",
                  [pulse, total_steps] {
            ShiftFaultModel faults;
            SegmentGuard guard(2, 0.999);
            Rng rng(2026 + pulse);
            const std::uint64_t pulses = total_steps / pulse;
            int corrupted_raw = 0;
            int corrupted_guarded = 0;
            for (int i = 0; i < trials; ++i) {
                if (faults.sampleTransferError(rng, pulses,
                                               pulse) != 0)
                    corrupted_raw++;
                auto stats = guard.run(rng, faults, pulses, pulse);
                if (!stats.dataIntact())
                    corrupted_guarded++;
            }
            SweepCellResult res;
            res.value = 100.0 * corrupted_guarded / trials;
            res.metrics["pulse_fault_probability"] =
                faults.pulseFaultProbability(pulse);
            res.metrics["corrupted_raw_pct"] =
                100.0 * corrupted_raw / trials;
            res.metrics["guard_overhead_pct"] =
                guard.overheadFraction(pulse) * 100;
            return res;
        });
    sweep.run();

    Table t({"pulse length", "P(pulse fault)",
             "corrupted transfers (no guard)",
             "corrupted (guarded)", "guard overhead"});
    for (unsigned pulse : pulse_lengths) {
        const auto &c =
            sweep.cell(std::to_string(pulse), "monte-carlo");
        t.addRow({std::to_string(pulse),
                  fmt(c.metrics.at("pulse_fault_probability"), 4),
                  fmt(c.metrics.at("corrupted_raw_pct"), 2) + "%",
                  fmt(c.value, 3) + "%",
                  fmt(c.metrics.at("guard_overhead_pct"), 2) +
                      "%"});
    }
    t.print();

    std::printf("\nSegmentation keeps every fault a correctable "
                "single-step misalignment; the guard check\nafter "
                "each pulse then removes nearly all corruption at "
                "sub-percent capacity overhead.\n");

    sweep.note("trials", trials);
    sweep.note("cell_unit", "corrupted_guarded_pct");
    sweep.writeReport();
    return 0;
}
