/**
 * @file
 * Ablation — end-to-end shift-fault injection through the
 * functional datapath (Secs. III-D and VI).
 *
 * Each cell runs a full FaultCampaign: a golden StreamPimSystem and
 * a fault-injected twin execute the same VPC program, then every
 * destination is compared bit for bit. The sweep crosses the bus
 * segment size against (p_step, guard coverage) operating points,
 * measuring how many VPCs finish Clean / Corrected / Retried /
 * Failed and verifying the recovery invariant: a VPC not marked
 * Failed is bit-exact against the golden run.
 *
 * Segmentation bounds each pulse fault to a +-1 misalignment and
 * the guard domains localize it; in-flight coverage < 1 only delays
 * detection to the next exact checkpoint, converting silent
 * corruption into visible escalation. Every cell is deterministic
 * in its config, so the table and JSON report are identical at any
 * STREAMPIM_JOBS.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/fault_campaign.hh"
#include "core/report.hh"
#include "parallel/sweep.hh"
#include "rm/fault.hh"

using namespace streampim;
using namespace streampim::bench;

namespace
{

struct OperatingPoint
{
    const char *name;
    double pStep;
    double coverage;
};

/** Rebuild the per-bank SMART telemetry from a cell's bank<N>_*
 * metrics (the cells run on pool workers, so printing happens here,
 * deterministically, from the recorded metrics — same convention as
 * abl_endurance). */
std::vector<BankHealth>
bankHealthFromMetrics(const SweepCellResult &c)
{
    std::vector<BankHealth> health;
    for (unsigned b = 0;; ++b) {
        const std::string p = "bank" + std::to_string(b) + "_";
        auto it = c.metrics.find(p + "spares_total");
        if (it == c.metrics.end())
            break;
        BankHealth h;
        h.bank = b;
        h.sparesTotal = unsigned(it->second);
        h.sparesUsed =
            h.sparesTotal -
            unsigned(c.metrics.at(p + "remaining_spares"));
        h.maxWear = std::uint64_t(c.metrics.at(p + "max_wear"));
        h.deposits = std::uint64_t(c.metrics.at(p + "deposits"));
        h.trackRemaps =
            std::uint64_t(c.metrics.at(p + "track_remaps"));
        h.redeposits =
            std::uint64_t(c.metrics.at(p + "redeposits"));
        h.writeFailures =
            std::uint64_t(c.metrics.at(p + "write_failures"));
        health.push_back(h);
    }
    return health;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation: end-to-end shift-fault campaigns "
                "(golden vs injected datapath)\n\n");

    const std::vector<unsigned> segments = {64, 128, 256};
    const std::vector<OperatingPoint> points = {
        {"p1e-4/cov.999", 1e-4, 0.999},
        {"p1e-3/cov.999", 1e-3, 0.999},
        {"p1e-3/cov.90", 1e-3, 0.90},
        {"p1e-2/cov.90", 1e-2, 0.90},
    };
    const unsigned vpcs = 16;

    SweepRunner sweep("abl_shift_faults", argc, argv);
    for (unsigned seg : segments)
        for (const auto &pt : points) {
            FaultCampaignConfig cfg;
            cfg.busSegmentSize = seg;
            cfg.pStep = pt.pStep;
            cfg.guardCoverage = pt.coverage;
            cfg.vpcs = vpcs;
            // Per-cell seed derived from the cell coordinates, so
            // streams are decorrelated and independent of execution
            // order.
            cfg.seed = 0x5eedULL ^ (seg * 0x9e3779b9ULL) ^
                       std::uint64_t(pt.pStep * 1e7) ^
                       std::uint64_t(pt.coverage * 1e3);
            sweep.add(std::to_string(seg), pt.name, [cfg] {
                auto res = runFaultCampaign(cfg);
                SweepCellResult cell;
                cell.value =
                    100.0 * double(res.failed) / double(res.vpcs());
                cell.metrics["clean"] = res.clean;
                cell.metrics["corrected"] = res.corrected;
                cell.metrics["retried"] = res.retried;
                cell.metrics["failed"] = res.failed;
                cell.metrics["mismatched_recovered"] =
                    res.mismatchedRecovered;
                cell.metrics["failed_but_intact"] =
                    res.failedButIntact;
                cell.metrics["faults_injected"] =
                    double(res.stats.faultsInjected);
                cell.metrics["correction_shifts"] =
                    double(res.stats.correctionShifts);
                cell.metrics["realign_retries"] =
                    double(res.stats.realignRetries);
                cell.metrics["guard_checks"] =
                    double(res.stats.guardChecks);
                cell.metrics["pulses"] = double(res.stats.pulses);
                // SMART-style per-bank health telemetry, for parity
                // with abl_endurance (shift campaigns still deposit
                // and wear tracks on every write).
                for (const BankHealth &h : res.health) {
                    const std::string p =
                        "bank" + std::to_string(h.bank) + "_";
                    cell.metrics[p + "remaining_spares"] =
                        double(h.remainingSpares());
                    cell.metrics[p + "spares_total"] =
                        double(h.sparesTotal);
                    cell.metrics[p + "max_wear"] =
                        double(h.maxWear);
                    cell.metrics[p + "deposits"] =
                        double(h.deposits);
                    cell.metrics[p + "track_remaps"] =
                        double(h.trackRemaps);
                    cell.metrics[p + "redeposits"] =
                        double(h.redeposits);
                    cell.metrics[p + "write_failures"] =
                        double(h.writeFailures);
                }
                // Reserved perf metric: bus segment pulses are the
                // functional unit of work this campaign executes.
                cell.metrics["functional_ops"] =
                    double(res.stats.pulses);
                cell.metrics["observed_pulse_fault_rate"] =
                    res.stats.pulses
                        ? double(res.stats.faultsInjected) /
                              double(res.stats.pulses)
                        : 0.0;
                return cell;
            });
        }
    sweep.run();

    bool invariant_ok = true;
    for (const auto &pt : points) {
        std::printf("operating point %s:\n", pt.name);
        Table t({"segment", "clean", "corrected", "retried",
                 "failed", "faults", "corr. shifts",
                 "observed P(pulse fault)", "model P"});
        ShiftFaultModel model(pt.pStep);
        for (unsigned seg : segments) {
            const auto &c =
                sweep.cell(std::to_string(seg), pt.name);
            if (c.metrics.at("mismatched_recovered") != 0.0)
                invariant_ok = false;
            t.addRow({std::to_string(seg),
                      fmt(c.metrics.at("clean"), 0),
                      fmt(c.metrics.at("corrected"), 0),
                      fmt(c.metrics.at("retried"), 0),
                      fmt(c.metrics.at("failed"), 0),
                      fmt(c.metrics.at("faults_injected"), 0),
                      fmt(c.metrics.at("correction_shifts"), 0),
                      fmtSci(c.metrics.at(
                          "observed_pulse_fault_rate")),
                      fmtSci(model.pulseFaultProbability(seg))});
        }
        t.print();
        // SMART host queries: what the device reports per bank at
        // campaign end (StreamPimSystem::bankHealth()), one summary
        // per operating point at the largest segment size.
        const auto &last = sweep.cell(
            std::to_string(segments.back()), pt.name);
        std::printf("SMART, segment %u:\n%s\n", segments.back(),
                    summarizeBankHealth(bankHealthFromMetrics(last))
                        .c_str());
        std::printf("\n");
    }

    std::printf("%s: every VPC not marked Failed was bit-exact "
                "against its golden run.\n",
                invariant_ok ? "invariant held"
                             : "INVARIANT VIOLATED");
    std::printf("Escalation replaces silent corruption: lower "
                "coverage and higher p_step raise the\nRetried and "
                "Failed counts, never the number of undetected "
                "mismatches.\n");

    // Opt-in (STREAMPIM_PERF_REF=1): serial reference timing +
    // byte-identity re-check of every cell, recorded in the report's
    // perf section as the engine-speedup trajectory.
    sweep.measureSerialReference();
    printPerf("bus pulses", sweep.functionalOps(),
              sweep.wallSeconds());
    sweep.note("vpcs_per_cell", vpcs);
    sweep.note("cell_unit", "failed_vpc_pct");
    sweep.note("invariant_held", invariant_ok ? 1.0 : 0.0);
    sweep.writeReport();
    return invariant_ok ? 0 : 1;
}
