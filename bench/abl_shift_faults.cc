/**
 * @file
 * Ablation — shift-fault exposure vs bus pulse length, with and
 * without the guard-domain realignment (Secs. III-D and VI).
 *
 * The segmented bus bounds each current pulse to one segment, which
 * (a) keeps the per-pulse fault probability low and (b) makes every
 * fault a correctable +-1 misalignment. This bench quantifies both
 * effects by Monte-Carlo over the fault model.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rm/fault.hh"
#include "rm/params.hh"
#include "rm/redundancy.hh"

using namespace streampim;
using namespace streampim::bench;

int
main()
{
    std::printf("Ablation: shift faults vs pulse length "
                "(p_step = 4.5e-5 per domain step)\n\n");

    RmParams rm;
    ShiftFaultModel faults;
    SegmentGuard guard(2, 0.999);
    Rng rng(2026);

    // A transfer of one full bus length per trial, many trials.
    const std::uint64_t total_steps = rm.busLengthDomains;
    const int trials = 4000;

    Table t({"pulse length", "P(pulse fault)",
             "corrupted transfers (no guard)",
             "corrupted (guarded)", "guard overhead"});

    for (unsigned pulse : {64u, 256u, 1024u, 4096u}) {
        const std::uint64_t pulses = total_steps / pulse;
        int corrupted_raw = 0;
        int corrupted_guarded = 0;
        for (int i = 0; i < trials; ++i) {
            if (faults.sampleTransferError(rng, pulses, pulse) != 0)
                corrupted_raw++;
            auto stats = guard.run(rng, faults, pulses, pulse);
            if (!stats.dataIntact())
                corrupted_guarded++;
        }
        t.addRow({std::to_string(pulse),
                  fmt(faults.pulseFaultProbability(pulse), 4),
                  fmt(100.0 * corrupted_raw / trials, 2) + "%",
                  fmt(100.0 * corrupted_guarded / trials, 3) + "%",
                  fmt(guard.overheadFraction(pulse) * 100, 2) + "%"});
    }
    t.print();

    std::printf("\nSegmentation keeps every fault a correctable "
                "single-step misalignment; the guard check\nafter "
                "each pulse then removes nearly all corruption at "
                "sub-percent capacity overhead.\n");
    return 0;
}
