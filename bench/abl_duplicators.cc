/**
 * @file
 * Ablation — duplicator count vs performance.
 *
 * Sec. III-C: an n-bit scalar multiplication must duplicate its
 * operand n times, an n-cycle stall with one duplicator; StreamPIM
 * provisions multiple duplicators (Table III uses 2) to cut the
 * pipeline initiation interval to ceil(n/d) cycles. This ablation
 * sweeps d and shows throughput saturating once duplication stops
 * being the bottleneck stage.
 */

#include <cstdio>

#include "baselines/stream_pim_platform.hh"
#include "bench_util.hh"
#include "processor/timing.hh"
#include "workloads/polybench.hh"

using namespace streampim;
using namespace streampim::bench;

int
main()
{
    const unsigned dim = runDim();
    std::printf("Ablation: in-processor duplicator count "
                "(dim=%u)\n\n", dim);

    Table t({"duplicators", "multiply II (cycles)",
             "gemm speedup vs 1 duplicator"});

    double base_s = 0.0;
    for (unsigned d : {1u, 2u, 4u, 8u}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.rm.duplicators = d;
        StreamPimPlatform stpim(cfg);
        ProcessorTiming timing(cfg.rm);

        TaskGraph g = makePolybench(PolybenchKernel::Gemm, dim);
        double s = stpim.run(g).seconds;
        if (d == 1)
            base_s = s;
        t.addRow({std::to_string(d),
                  std::to_string(timing.multiplyII()),
                  fmt(base_s / s, 2) + "x"});
    }
    t.print();

    std::printf("\nExpected: ~2x from 1->2 duplicators (Table III"
                " default), ~2x more to 8, then other stages "
                "dominate.\n");
    return 0;
}
