/**
 * @file
 * Ablation — duplicator count vs performance.
 *
 * Sec. III-C: an n-bit scalar multiplication must duplicate its
 * operand n times, an n-cycle stall with one duplicator; StreamPIM
 * provisions multiple duplicators (Table III uses 2) to cut the
 * pipeline initiation interval to ceil(n/d) cycles. This ablation
 * sweeps d and shows throughput saturating once duplication stops
 * being the bottleneck stage.
 */

#include <cstdio>

#include "baselines/stream_pim_platform.hh"
#include "bench_util.hh"
#include "parallel/sweep.hh"
#include "processor/timing.hh"
#include "workloads/polybench.hh"

using namespace streampim;
using namespace streampim::bench;

int
main(int argc, char **argv)
{
    const unsigned dim = runDim();
    std::printf("Ablation: in-processor duplicator count "
                "(dim=%u)\n\n", dim);

    const std::vector<unsigned> dups = {1, 2, 4, 8};

    SweepRunner sweep("abl_duplicators", argc, argv);
    for (unsigned d : dups)
        sweep.add(std::to_string(d), "gemm", [d, dim] {
            SystemConfig cfg = SystemConfig::paperDefault();
            cfg.rm.duplicators = d;
            StreamPimPlatform stpim(cfg);
            ProcessorTiming timing(cfg.rm);
            TaskGraph g = makePolybench(PolybenchKernel::Gemm, dim);
            SweepCellResult res;
            res.value = stpim.run(g).seconds;
            res.metrics["multiply_ii_cycles"] =
                double(timing.multiplyII());
            return res;
        });
    sweep.run();

    const double base_s = sweep.value("1", "gemm");
    Table t({"duplicators", "multiply II (cycles)",
             "gemm speedup vs 1 duplicator"});
    for (unsigned d : dups) {
        const auto &c = sweep.cell(std::to_string(d), "gemm");
        t.addRow({std::to_string(d),
                  fmt(c.metrics.at("multiply_ii_cycles"), 0),
                  fmt(base_s / c.value, 2) + "x"});
    }
    t.print();

    std::printf("\nExpected: ~2x from 1->2 duplicators (Table III"
                " default), ~2x more to 8, then other stages "
                "dominate.\n");

    sweep.note("cell_unit", "seconds");
    sweep.writeReport();
    return 0;
}
