/**
 * @file
 * Tests for the polybench kernel builders (Table IV shapes).
 */

#include <gtest/gtest.h>

#include "workloads/dnn.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

TEST(Polybench, AllNineKernelsInFigureOrder)
{
    const auto &all = allPolybenchKernels();
    ASSERT_EQ(all.size(), 9u);
    EXPECT_STREQ(polybenchName(all[0]), "2mm");
    EXPECT_STREQ(polybenchName(all[8]), "mvt");
}

TEST(Polybench, SmallKernelsMatchFig3)
{
    const auto &small = smallPolybenchKernels();
    ASSERT_EQ(small.size(), 4u);
    EXPECT_STREQ(polybenchName(small[0]), "atax");
    EXPECT_STREQ(polybenchName(small[3]), "mvt");
}

TEST(Polybench, ExtralargeShapesAtDim2000)
{
    TaskGraph gemm = makePolybench(PolybenchKernel::Gemm, 2000);
    // EXTRALARGE gemm: NI/NJ/NK = 2000/2300/2600.
    EXPECT_EQ(gemm.matrices[0].rows, 2000u);
    EXPECT_EQ(gemm.matrices[0].cols, 2600u);
    EXPECT_EQ(gemm.matrices[1].cols, 2300u);
}

TEST(Polybench, DimensionsScaleProportionally)
{
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 1000);
    EXPECT_EQ(g.matrices[0].rows, 1000u);
    EXPECT_EQ(g.matrices[0].cols, 1300u);
}

TEST(Polybench, AtaxComputesTwoMatVecs)
{
    TaskGraph g = makePolybench(PolybenchKernel::Atax, 2000);
    ASSERT_EQ(g.ops.size(), 2u);
    EXPECT_EQ(g.ops[0].kind, MatOpKind::MatVec);
    EXPECT_EQ(g.ops[1].kind, MatOpKind::MatVecT);
    // MACs = M*N twice.
    EXPECT_EQ(g.totalMacs(), 2ull * 1900 * 2100);
}

TEST(Polybench, MvtUsesBothOrientations)
{
    TaskGraph g = makePolybench(PolybenchKernel::Mvt, 2000);
    unsigned matvec = 0, matvec_t = 0, add = 0;
    for (const auto &op : g.ops) {
        matvec += op.kind == MatOpKind::MatVec;
        matvec_t += op.kind == MatOpKind::MatVecT;
        add += op.kind == MatOpKind::MatAdd;
    }
    EXPECT_EQ(matvec, 1u);
    EXPECT_EQ(matvec_t, 1u);
    EXPECT_EQ(add, 2u);
}

TEST(Polybench, ThreeMmIsThreeMatMuls)
{
    TaskGraph g = makePolybench(PolybenchKernel::ThreeMm, 100);
    unsigned mm = 0;
    for (const auto &op : g.ops)
        mm += op.kind == MatOpKind::MatMul;
    EXPECT_EQ(mm, 3u);
}

TEST(Polybench, EveryKernelValidatesAtSmallDims)
{
    for (PolybenchKernel k : allPolybenchKernels()) {
        TaskGraph g = makePolybench(k, 16);
        EXPECT_GT(g.ops.size(), 0u) << polybenchName(k);
        EXPECT_GT(g.totalMacs(), 0u) << polybenchName(k);
    }
}

TEST(Dnn, MlpShapesFollowConfig)
{
    MlpConfig cfg;
    cfg.batch = 32;
    cfg.inputDim = 100;
    cfg.hiddenDim = 64;
    cfg.hiddenLayers = 1;
    cfg.outputDim = 10;
    TaskGraph g = makeMlp(cfg);
    // Two matmul layers (hidden + output).
    unsigned mm = 0;
    for (const auto &op : g.ops)
        mm += op.kind == MatOpKind::MatMul;
    EXPECT_EQ(mm, 2u);
    EXPECT_EQ(g.totalMacs() >=
                  32ull * 100 * 64 + 32ull * 64 * 10,
              true);
}

TEST(Dnn, BertLayerStructure)
{
    BertConfig cfg;
    cfg.layers = 1;
    TaskGraph g = makeBert(cfg);
    unsigned mm = 0, nonlinear = 0;
    for (const auto &op : g.ops) {
        mm += op.kind == MatOpKind::MatMul;
        nonlinear += op.kind == MatOpKind::Nonlinear;
    }
    // QKV (3) + per-head score/context (2 x 12) + output (1) +
    // FFN (2) = 30 matmuls per layer.
    EXPECT_EQ(mm, 30u);
    // softmax per head (12) + 2 layer norms + 1 GELU = 15.
    EXPECT_EQ(nonlinear, 15u);
}

TEST(Dnn, NonlinearElementsAreHostWeighted)
{
    TaskGraph g;
    auto a = g.addMatrix("a", 10, 10);
    auto c = g.addMatrix("c", 10, 10);
    g.addOp(MatOpKind::Nonlinear, a, a, c, 12.0);
    EXPECT_EQ(nonlinearElements(g), 1200u);
}

TEST(Polybench, SmallestScaleClampsEveryDimensionToOne)
{
    // dim 1 scales every EXTRALARGE extent to 1600*1/2000 = 0 before
    // clamping; every kernel must still build a valid graph with no
    // zero-sized matrix.
    for (PolybenchKernel k : allPolybenchKernels()) {
        TaskGraph g = makePolybench(k, 1);
        EXPECT_GT(g.ops.size(), 0u) << polybenchName(k);
        for (const auto &m : g.matrices) {
            EXPECT_GE(m.rows, 1u)
                << polybenchName(k) << " " << m.name;
            EXPECT_GE(m.cols, 1u)
                << polybenchName(k) << " " << m.name;
        }
    }
}

TEST(Polybench, PaperDimMatmulsAreNotMarkedTiled)
{
    // The Table IV reference dims sit below the out-of-core
    // threshold by design; their untiled plans are pinned elsewhere.
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 2000);
    for (const auto &op : g.ops)
        EXPECT_FALSE(op.tiled);
}

TEST(Polybench, OversizeMatmulsComeBackMarkedTiled)
{
    // Doubling the paper dim pushes gemm's operands past the
    // threshold (4000*5200 elements > 2 x 4 MiB).
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 4000);
    unsigned tiled = 0;
    for (const auto &op : g.ops) {
        if (op.kind == MatOpKind::MatMul)
            EXPECT_TRUE(op.tiled);
        tiled += op.tiled;
    }
    EXPECT_GT(tiled, 0u);
}

TEST(PolybenchDeath, TinyDimPanics)
{
    EXPECT_DEATH(makePolybench(PolybenchKernel::Gemm, 0),
                 "dimension");
}

} // namespace
} // namespace streampim
