/**
 * @file
 * Tests for the task-graph representation and its invariants.
 */

#include <gtest/gtest.h>

#include "workloads/task_graph.hh"

namespace streampim
{
namespace
{

TEST(TaskGraph, AddMatrixReturnsSequentialIds)
{
    TaskGraph g;
    EXPECT_EQ(g.addMatrix("A", 2, 3), 0u);
    EXPECT_EQ(g.addMatrix("B", 3, 4), 1u);
    EXPECT_EQ(g.matrices[0].elements(), 6u);
    EXPECT_FALSE(g.matrices[0].isVector());
    MatrixDesc vec{"v", 5, 1};
    EXPECT_TRUE(vec.isVector());
}

TEST(TaskGraph, MacCounting)
{
    TaskGraph g;
    auto a = g.addMatrix("A", 10, 20);
    auto b = g.addMatrix("B", 20, 30);
    auto c = g.addMatrix("C", 10, 30);
    g.addOp(MatOpKind::MatMul, a, b, c);
    EXPECT_EQ(g.totalMacs(), 10u * 20 * 30);

    auto x = g.addMatrix("x", 30, 1);
    auto y = g.addMatrix("y", 10, 1);
    g.addOp(MatOpKind::MatVec, c, x, y);
    EXPECT_EQ(g.totalMacs(), 10u * 20 * 30 + 10 * 30);
}

TEST(TaskGraph, WorkingSetBytes)
{
    TaskGraph g;
    g.addMatrix("A", 4, 4);
    g.addMatrix("B", 2, 8);
    EXPECT_EQ(g.workingSetBytes(), 32u);
}

TEST(TaskGraph, NonlinearIsNotMacs)
{
    TaskGraph g;
    auto a = g.addMatrix("A", 8, 8);
    auto c = g.addMatrix("C", 8, 8);
    g.addOp(MatOpKind::Nonlinear, a, a, c);
    EXPECT_EQ(g.totalMacs(), 0u);
}

TEST(TaskGraphDeath, ShapeMismatchesPanic)
{
    TaskGraph g;
    auto a = g.addMatrix("A", 4, 5);
    auto b = g.addMatrix("B", 6, 7); // inner dim mismatch
    auto c = g.addMatrix("C", 4, 7);
    EXPECT_DEATH(g.addOp(MatOpKind::MatMul, a, b, c), "inner");

    auto v = g.addMatrix("v", 5, 1);
    auto y_bad = g.addMatrix("y", 3, 1);
    EXPECT_DEATH(g.addOp(MatOpKind::MatVec, a, v, y_bad), "shape");
}

TEST(TaskGraphDeath, UnknownMatrixPanics)
{
    TaskGraph g;
    auto a = g.addMatrix("A", 2, 2);
    EXPECT_DEATH(g.addOp(MatOpKind::MatAdd, a, 42, a), "unknown");
}

TEST(TaskGraphDeath, DegenerateShapePanics)
{
    TaskGraph g;
    EXPECT_DEATH(g.addMatrix("A", 0, 4), "degenerate");
}

} // namespace
} // namespace streampim
