/**
 * @file
 * Tests for VPC decoding and distribution (Fig. 14).
 */

#include <gtest/gtest.h>

#include "vpc/decoder.hh"

namespace streampim
{
namespace
{

struct Fixture
{
    RmParams rm;
    AddressMap map{rm};
    VpcDecoder decoder{rm, map};
};

TEST(VpcDecoder, SingleSubarrayVpcIsOneCommand)
{
    Fixture f;
    // Everything inside subarray 0 of bank 0.
    Vpc vpc{VpcKind::Mul, 0, 4096, 8192, 100};
    auto cmds = f.decoder.decode(vpc);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].kind, BankCommandKind::ExecuteInBank);
    EXPECT_EQ(cmds[0].bank, 0u);
    EXPECT_EQ(cmds[0].op, VpcKind::Mul);
}

TEST(VpcDecoder, RemoteOperandAddsReadCommand)
{
    Fixture f;
    Vpc vpc{VpcKind::Add, 0, f.rm.bytesPerBank() /* bank 1 */, 64,
            32};
    auto cmds = f.decoder.decode(vpc);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].kind, BankCommandKind::ReadBlock);
    EXPECT_EQ(cmds[0].bank, 1u);
    EXPECT_EQ(cmds[1].kind, BankCommandKind::ExecuteInBank);
    EXPECT_EQ(cmds[1].bank, 0u);
}

TEST(VpcDecoder, RemoteDestinationAddsWriteCommand)
{
    Fixture f;
    Vpc vpc{VpcKind::Mul, 0, 64, 2 * f.rm.bytesPerBank(), 16};
    auto cmds = f.decoder.decode(vpc);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].kind, BankCommandKind::ExecuteInBank);
    EXPECT_EQ(cmds[1].kind, BankCommandKind::WriteBlock);
    EXPECT_EQ(cmds[1].bank, 2u);
    // A dot product stores one 32-bit accumulator.
    EXPECT_EQ(cmds[1].bytes, 4u);
}

TEST(VpcDecoder, NonDotResultsAreFullVectors)
{
    Fixture f;
    Vpc vpc{VpcKind::Add, 0, 64, 2 * f.rm.bytesPerBank(), 16};
    auto cmds = f.decoder.decode(vpc);
    EXPECT_EQ(cmds.back().bytes, 16u);
}

TEST(VpcDecoder, TranIsReadPlusWrite)
{
    Fixture f;
    Vpc vpc{VpcKind::Tran, 0, 0, f.rm.bytesPerBank(), 128};
    auto cmds = f.decoder.decode(vpc);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].kind, BankCommandKind::ReadBlock);
    EXPECT_EQ(cmds[1].kind, BankCommandKind::WriteBlock);
    EXPECT_EQ(cmds[1].bank, 1u);
}

TEST(VpcDecoder, ExecutingBankFollowsSrc1)
{
    Fixture f;
    Vpc vpc{VpcKind::Mul, 5 * f.rm.bytesPerBank(), 0, 0, 8};
    EXPECT_EQ(f.decoder.executingBank(vpc), 5u);
}

TEST(VpcDecoder, ExpandExecuteFollowsFig13)
{
    Fixture f;
    BankCommand cmd{BankCommandKind::ExecuteInBank, 0, 0, 0, 50,
                    VpcKind::Mul};
    auto ops = f.decoder.expand(cmd);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, SubarrayOpKind::StreamIn);
    EXPECT_EQ(ops[0].elements, 100u); // two operand streams
    EXPECT_EQ(ops[1].kind, SubarrayOpKind::Compute);
    EXPECT_EQ(ops[1].elements, 50u);
    EXPECT_EQ(ops[2].kind, SubarrayOpKind::StreamOut);
    EXPECT_EQ(ops[2].elements, 4u); // one 32-bit scalar out
}

TEST(VpcDecoder, ExpandSmulStreamsOneOperand)
{
    Fixture f;
    BankCommand cmd{BankCommandKind::ExecuteInBank, 0, 0, 0, 50,
                    VpcKind::Smul};
    auto ops = f.decoder.expand(cmd);
    EXPECT_EQ(ops[0].elements, 50u);
    EXPECT_EQ(ops[2].elements, 50u);
}

TEST(VpcDecoder, ExpandReadWriteArePortOps)
{
    Fixture f;
    BankCommand rd{BankCommandKind::ReadBlock, 0, 0, 0, 64,
                   VpcKind::Tran};
    auto ops = f.decoder.expand(rd);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, SubarrayOpKind::PortRead);
    BankCommand wr{BankCommandKind::WriteBlock, 0, 0, 0, 64,
                   VpcKind::Tran};
    EXPECT_EQ(f.decoder.expand(wr)[0].kind,
              SubarrayOpKind::PortWrite);
}

TEST(VpcDecoderDeath, ZeroSizePanics)
{
    Fixture f;
    Vpc vpc{VpcKind::Mul, 0, 0, 0, 0};
    EXPECT_DEATH(f.decoder.decode(vpc), "zero-size");
}

} // namespace
} // namespace streampim
