/**
 * @file
 * Tests for VPC types and the asynchronous queue (Table II,
 * Sec. IV-B).
 */

#include <gtest/gtest.h>

#include "vpc/vpc.hh"

namespace streampim
{
namespace
{

TEST(Vpc, MnemonicsMatchTableII)
{
    EXPECT_STREQ(vpcKindName(VpcKind::Mul), "MUL");
    EXPECT_STREQ(vpcKindName(VpcKind::Smul), "SMUL");
    EXPECT_STREQ(vpcKindName(VpcKind::Add), "ADD");
    EXPECT_STREQ(vpcKindName(VpcKind::Tran), "TRAN");
}

TEST(Vpc, PimPredicate)
{
    EXPECT_TRUE(isPimVpc(VpcKind::Mul));
    EXPECT_TRUE(isPimVpc(VpcKind::Smul));
    EXPECT_TRUE(isPimVpc(VpcKind::Add));
    EXPECT_FALSE(isPimVpc(VpcKind::Tran));
}

TEST(Vpc, ToStringFollowsTableIIShape)
{
    Vpc v{VpcKind::Mul, 16, 32, 64, 100};
    EXPECT_EQ(v.toString(),
              "MUL src1=16 src2=32 des=64 size=100");
    Vpc t{VpcKind::Tran, 1, 0, 2, 8};
    // TRAN has no second source operand (Table II).
    EXPECT_EQ(t.toString(), "TRAN src1=1 des=2 size=8");
}

TEST(VpcQueue, StartsEmpty)
{
    VpcQueue q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.capacity(), 4u);
}

TEST(VpcQueue, PushPopFifo)
{
    VpcQueue q(4);
    q.push({VpcKind::Mul, 1, 2, 3, 4});
    q.push({VpcKind::Add, 5, 6, 7, 8});
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.pop().kind, VpcKind::Mul);
    EXPECT_EQ(q.pop().kind, VpcKind::Add);
    EXPECT_TRUE(q.empty());
}

TEST(VpcQueue, RefusesWhenFull)
{
    VpcQueue q(2);
    EXPECT_TRUE(q.push({VpcKind::Mul, 0, 0, 0, 1}));
    EXPECT_TRUE(q.push({VpcKind::Mul, 0, 0, 0, 1}));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push({VpcKind::Mul, 0, 0, 0, 1}));
    EXPECT_EQ(q.accepted(), 2u);
}

TEST(VpcQueue, AsynchronousSendResponseBookkeeping)
{
    VpcQueue q(8);
    q.push({VpcKind::Mul, 0, 0, 0, 1});
    q.push({VpcKind::Add, 0, 0, 0, 1});
    EXPECT_EQ(q.inFlight(), 2u);
    q.pop();
    q.respond();
    EXPECT_EQ(q.inFlight(), 1u);
    q.pop();
    q.respond();
    EXPECT_EQ(q.inFlight(), 0u);
    EXPECT_EQ(q.responses(), 2u);
}

TEST(VpcQueueDeath, PopFromEmptyPanics)
{
    VpcQueue q(2);
    EXPECT_DEATH(q.pop(), "empty");
}

} // namespace
} // namespace streampim
