/**
 * @file
 * Backend-parameterized edge-case tests of the BitVec word kernels
 * (the SIMD shim of common/simd.hh): cross-word shifts at sizes
 * straddling the word and inline-storage boundaries, non-word-
 * aligned copyRange, the top-word zero invariant, and the
 * equality / popcount / addPacked kernels — each run under every
 * backend the host supports, against a bit-serial reference.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "common/simd.hh"

using namespace streampim;

namespace
{

std::vector<simd::Backend>
availableBackends()
{
    std::vector<simd::Backend> b{simd::Backend::Scalar};
    if (simd::avx2Supported())
        b.push_back(simd::Backend::Avx2);
    return b;
}

std::string
backendLabel(const testing::TestParamInfo<simd::Backend> &info)
{
    return info.param == simd::Backend::Avx2 ? "avx2" : "scalar";
}

/** Deterministic pseudo-random vector of @p n bits. */
BitVec
randomVec(Rng &rng, std::size_t n)
{
    BitVec v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.below(2) != 0);
    return v;
}

/** Bit-serial reference shift (left when @p left, else right). */
BitVec
shiftReference(const BitVec &v, std::size_t n, bool left)
{
    BitVec out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (left) {
            if (i >= n && v.get(i - n))
                out.set(i, true);
        } else {
            if (i + n < v.size() && v.get(i + n))
                out.set(i, true);
        }
    }
    return out;
}

/** Every word's bits beyond size() must be zero. */
void
expectTopInvariant(const BitVec &v)
{
    if (v.size() % BitVec::kWordBits == 0)
        return;
    const std::uint64_t top = v.word(v.wordCount() - 1);
    const std::uint64_t mask =
        (std::uint64_t(1) << (v.size() % BitVec::kWordBits)) - 1;
    EXPECT_EQ(top & ~mask, 0u) << "top-word invariant violated at "
                               << v.size() << " bits";
}

class SimdKernelsTest : public testing::TestWithParam<simd::Backend>
{
  protected:
    SimdKernelsTest() : scoped_(GetParam()) {}

    // The sizes straddle the word boundary (63/64/65) and the
    // inline-storage boundary (127/128/129, kInlineWords == 2).
    static constexpr std::size_t kSizes[] = {63, 64, 65, 127, 128,
                                             129};

  private:
    simd::ScopedBackend scoped_;
};

TEST_P(SimdKernelsTest, CrossWordShiftsMatchBitSerialReference)
{
    Rng rng(0x51D5);
    for (std::size_t n : kSizes) {
        BitVec v = randomVec(rng, n);
        for (std::size_t s :
             {std::size_t(0), std::size_t(1), std::size_t(7),
              std::size_t(63), std::size_t(64), std::size_t(65),
              n - 1, n, n + 3}) {
            BitVec l = v;
            l <<= s;
            EXPECT_EQ(l, shiftReference(v, s, true))
                << "size " << n << " << " << s;
            expectTopInvariant(l);

            BitVec r = v;
            r >>= s;
            EXPECT_EQ(r, shiftReference(v, s, false))
                << "size " << n << " >> " << s;
            expectTopInvariant(r);
        }
    }
}

TEST_P(SimdKernelsTest, NonWordAlignedCopyRange)
{
    Rng rng(0xC0DE);
    for (std::size_t n : kSizes) {
        const BitVec src = randomVec(rng, n);
        // Misaligned source/destination positions, lengths spanning
        // zero, one and several words.
        for (std::size_t src_pos : {std::size_t(0), std::size_t(1),
                                    std::size_t(13), n / 2}) {
            for (std::size_t dst_pos :
                 {std::size_t(0), std::size_t(3), std::size_t(62),
                  n / 3}) {
                const std::size_t len = std::min(n - src_pos,
                                                 n - dst_pos);
                BitVec dst = randomVec(rng, n);
                const BitVec before = dst;
                dst.copyRange(src, src_pos, dst_pos, len);
                for (std::size_t i = 0; i < n; ++i) {
                    const bool expect =
                        i >= dst_pos && i < dst_pos + len
                            ? src.get(src_pos + (i - dst_pos))
                            : before.get(i);
                    ASSERT_EQ(dst.get(i), expect)
                        << "size " << n << " src_pos " << src_pos
                        << " dst_pos " << dst_pos << " bit " << i;
                }
                expectTopInvariant(dst);
            }
        }
    }
}

TEST_P(SimdKernelsTest, BitwiseOpsAndInvertKeepTopWordZero)
{
    Rng rng(0xBEEF);
    for (std::size_t n : kSizes) {
        BitVec a = randomVec(rng, n);
        const BitVec b = randomVec(rng, n);

        BitVec x = a;
        x &= b;
        BitVec o = a;
        o |= b;
        BitVec e = a;
        e ^= b;
        BitVec inv = a;
        inv.invert();
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(x.get(i), a.get(i) && b.get(i));
            ASSERT_EQ(o.get(i), a.get(i) || b.get(i));
            ASSERT_EQ(e.get(i), a.get(i) != b.get(i));
            ASSERT_EQ(inv.get(i), !a.get(i));
        }
        expectTopInvariant(x);
        expectTopInvariant(o);
        expectTopInvariant(e);
        expectTopInvariant(inv);
    }
}

TEST_P(SimdKernelsTest, EqualityAndPopcount)
{
    Rng rng(0xFACE);
    for (std::size_t n : kSizes) {
        BitVec a = randomVec(rng, n);
        BitVec b = a;
        EXPECT_EQ(a, b);

        std::size_t ones = 0;
        for (std::size_t i = 0; i < n; ++i)
            ones += a.get(i);
        EXPECT_EQ(a.popcount(), ones) << "size " << n;

        // Flip the last bit: inequality must see the top word.
        b.set(n - 1, !b.get(n - 1));
        EXPECT_NE(a, b) << "size " << n;
    }
}

TEST_P(SimdKernelsTest, AddPackedMatchesBitSerialRipple)
{
    Rng rng(0xADD5);
    for (std::size_t n : kSizes) {
        const BitVec a = randomVec(rng, n);
        const BitVec b = randomVec(rng, n);
        for (bool cin : {false, true}) {
            BitVec sum(n);
            const bool carry = BitVec::addPacked(sum, a, b, cin);

            // Bit-serial ripple reference.
            BitVec ref(n);
            bool c = cin;
            for (std::size_t i = 0; i < n; ++i) {
                const bool ai = a.get(i);
                const bool bi = b.get(i);
                ref.set(i, ai != bi ? !c : c);
                c = (ai && bi) || (c && (ai != bi));
            }
            EXPECT_EQ(sum, ref) << "size " << n << " cin " << cin;
            EXPECT_EQ(carry, c) << "size " << n << " cin " << cin;
            expectTopInvariant(sum);
        }
    }
}

TEST_P(SimdKernelsTest, NarrowOperandZeroExtensionInAddPacked)
{
    // A narrow operand zero-extends into a wider sum; the carry out
    // of the sum width is reported, not swallowed by the top word.
    BitVec a = BitVec::fromWord(0xFF, 8);
    BitVec b = BitVec::fromWord(0x1, 8);
    BitVec sum(9);
    EXPECT_FALSE(BitVec::addPacked(sum, a, b));
    EXPECT_EQ(sum.toWord(), 0x100u);

    BitVec sum8(8);
    EXPECT_TRUE(BitVec::addPacked(sum8, a, b));
    EXPECT_EQ(sum8.toWord(), 0x0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SimdKernelsTest,
                         testing::ValuesIn(availableBackends()),
                         backendLabel);

} // namespace
