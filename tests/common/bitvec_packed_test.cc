/**
 * @file
 * Tests for the packed-word BitVec store: wide (>64-bit) vectors,
 * the word-level accessors, the bitwise/shift helpers, copyRange,
 * and addPacked — including the invariant that bits above size() in
 * the top word stay zero through every operation.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "common/rng.hh"

namespace streampim
{
namespace
{

TEST(BitVecPacked, WordCountAndAccess)
{
    BitVec v(130);
    EXPECT_EQ(v.wordCount(), 3u);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_EQ(v.word(0), 1ull);
    EXPECT_EQ(v.word(1), 1ull);
    EXPECT_EQ(v.word(2), 2ull);
    EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVecPacked, SetWordMasksAboveSize)
{
    BitVec v(70);
    v.setWord(1, ~0ull);
    // Only bits 64..69 are in range; the rest must be masked off.
    EXPECT_EQ(v.word(1), 0x3Full);
    EXPECT_EQ(v.popcount(), 6u);
}

TEST(BitVecPacked, PushAcrossWordBoundary)
{
    BitVec v;
    for (int i = 0; i < 70; ++i)
        v.push(i % 3 == 0);
    EXPECT_EQ(v.size(), 70u);
    EXPECT_EQ(v.wordCount(), 2u);
    for (int i = 0; i < 70; ++i)
        EXPECT_EQ(v.get(i), i % 3 == 0) << "bit " << i;
}

TEST(BitVecPacked, BitwiseOpsWide)
{
    Rng rng(5);
    BitVec a(100), b(100);
    for (unsigned i = 0; i < 100; ++i) {
        a.set(i, rng.next() & 1);
        b.set(i, rng.next() & 1);
    }
    BitVec and_v = a, or_v = a, xor_v = a;
    and_v &= b;
    or_v |= b;
    xor_v ^= b;
    for (unsigned i = 0; i < 100; ++i) {
        EXPECT_EQ(and_v.get(i), a.get(i) && b.get(i));
        EXPECT_EQ(or_v.get(i), a.get(i) || b.get(i));
        EXPECT_EQ(xor_v.get(i), a.get(i) != b.get(i));
    }
}

TEST(BitVecPacked, InvertKeepsTopBitsClear)
{
    BitVec v(67);
    v.set(2, true);
    v.invert();
    EXPECT_EQ(v.popcount(), 66u);
    v.invert();
    EXPECT_EQ(v.popcount(), 1u);
    EXPECT_TRUE(v.get(2));
}

TEST(BitVecPacked, ShiftLeftAcrossWords)
{
    BitVec v(130);
    v.set(0, true);
    v.set(63, true);
    v <<= 1;
    EXPECT_FALSE(v.get(0));
    EXPECT_TRUE(v.get(1));
    EXPECT_TRUE(v.get(64));
    v <<= 64;
    EXPECT_TRUE(v.get(65));
    EXPECT_TRUE(v.get(128));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVecPacked, ShiftLeftDropsBitsPastSize)
{
    BitVec v = BitVec::fromWord(0b11, 4);
    v <<= 3;
    // 0b11 << 3 inside 4 bits keeps only bit 3.
    EXPECT_EQ(v.toWord(), 0b1000ull);
    v <<= 10; // far past the width: everything drops
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVecPacked, ShiftRightAcrossWords)
{
    BitVec v(130);
    v.set(129, true);
    v.set(64, true);
    v >>= 65;
    EXPECT_TRUE(v.get(64));
    EXPECT_FALSE(v.get(129));
    EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVecPacked, CopyRangeUnaligned)
{
    Rng rng(9);
    BitVec src(100);
    for (unsigned i = 0; i < 100; ++i)
        src.set(i, rng.next() & 1);
    BitVec dst(200);
    dst.copyRange(src, 5, 71, 90);
    for (unsigned i = 0; i < 90; ++i)
        EXPECT_EQ(dst.get(71 + i), src.get(5 + i)) << "bit " << i;
    // Bits outside the destination window stay clear.
    for (unsigned i = 0; i < 71; ++i)
        EXPECT_FALSE(dst.get(i));
    for (unsigned i = 161; i < 200; ++i)
        EXPECT_FALSE(dst.get(i));
}

TEST(BitVecPacked, AddPackedMatchesWordArithmetic)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        BitVec sum(64);
        const bool carry = BitVec::addPacked(
            sum, BitVec::fromWord(a, 64), BitVec::fromWord(b, 64));
        EXPECT_EQ(sum.toWord(), a + b);
        EXPECT_EQ(carry, a + b < a);
    }
}

TEST(BitVecPacked, AddPackedCarryChainsAcrossWords)
{
    // all-ones + 1 ripples a carry through every word.
    BitVec a(130);
    a.invert(); // 130 ones
    BitVec one(130);
    one.set(0, true);
    BitVec sum(130);
    const bool carry = BitVec::addPacked(sum, a, one);
    EXPECT_TRUE(carry);
    EXPECT_EQ(sum.popcount(), 0u);
}

TEST(BitVecPacked, AddPackedZeroExtendsNarrowOperands)
{
    BitVec sum(32);
    const bool carry =
        BitVec::addPacked(sum, BitVec::fromWord(0xFF, 8),
                          BitVec::fromWord(0x1, 4));
    EXPECT_FALSE(carry);
    EXPECT_EQ(sum.toWord(), 0x100ull);
}

TEST(BitVecPacked, AddPackedCarryIn)
{
    BitVec sum(8);
    const bool carry =
        BitVec::addPacked(sum, BitVec::fromWord(0xFF, 8),
                          BitVec::fromWord(0x00, 8), true);
    EXPECT_TRUE(carry);
    EXPECT_EQ(sum.toWord(), 0ull);
}

TEST(BitVecPacked, ClearZeroesEverything)
{
    BitVec v(100);
    v.invert();
    v.clear();
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVecPacked, WideEqualityIsWordWise)
{
    BitVec a(150), b(150);
    a.set(149, true);
    EXPECT_NE(a, b);
    b.set(149, true);
    EXPECT_EQ(a, b);
    // Same prefix, different size: not equal.
    BitVec c(151);
    c.set(149, true);
    EXPECT_NE(a, c);
}

TEST(BitVecPacked, ResizeAcrossWordBoundaryKeepsInvariant)
{
    BitVec v(70);
    v.invert();
    v.resize(65);
    EXPECT_EQ(v.popcount(), 65u);
    v.resize(130);
    EXPECT_EQ(v.popcount(), 65u);
    v.resize(3);
    EXPECT_EQ(v.popcount(), 3u);
    EXPECT_EQ(v.toWord(), 0b111ull);
}

} // namespace
} // namespace streampim
