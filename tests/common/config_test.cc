/**
 * @file
 * Tests for the configuration store and RNG.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "common/config.hh"
#include "common/rng.hh"

namespace streampim
{
namespace
{

TEST(Config, TypedSettersAndGetters)
{
    Config c;
    c.setInt("dim", 2000);
    c.setDouble("freq", 3.7e9);
    c.setBool("pipelined", true);
    c.set("name", "streampim");

    EXPECT_EQ(c.getInt("dim", 0), 2000);
    EXPECT_DOUBLE_EQ(c.getDouble("freq", 0), 3.7e9);
    EXPECT_TRUE(c.getBool("pipelined", false));
    EXPECT_EQ(c.getString("name"), "streampim");
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, ParseMultilineAndSemicolons)
{
    Config c;
    std::size_t n = c.parse("a=1\n# comment\nb=two; c=3.5\n\n");
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_EQ(c.getString("b"), "two");
    EXPECT_DOUBLE_EQ(c.getDouble("c", 0), 3.5);
}

TEST(Config, BoolSpellings)
{
    Config c;
    c.set("t1", "true");
    c.set("t2", "1");
    c.set("t3", "yes");
    c.set("f1", "false");
    c.set("f2", "0");
    c.set("f3", "no");
    EXPECT_TRUE(c.getBool("t1", false));
    EXPECT_TRUE(c.getBool("t2", false));
    EXPECT_TRUE(c.getBool("t3", false));
    EXPECT_FALSE(c.getBool("f1", true));
    EXPECT_FALSE(c.getBool("f2", true));
    EXPECT_FALSE(c.getBool("f3", true));
}

TEST(Config, OverwriteTakesLastValue)
{
    Config c;
    c.setInt("x", 1);
    c.setInt("x", 2);
    EXPECT_EQ(c.getInt("x", 0), 2);
}

TEST(ConfigDeath, MalformedLineIsFatal)
{
    Config c;
    EXPECT_DEATH(c.parse("notakeyvalue"), "malformed");
    EXPECT_DEATH(c.parse("=value"), "malformed");
}

TEST(ConfigDeath, WrongTypeIsFatal)
{
    Config c;
    c.set("x", "abc");
    EXPECT_DEATH(c.getInt("x", 0), "not an integer");
    EXPECT_DEATH(c.getBool("x", false), "not a boolean");
}

TEST(Config, EnvHelpers)
{
    ::setenv("SPIM_TEST_ENV_INT", "123", 1);
    EXPECT_EQ(Config::envInt("SPIM_TEST_ENV_INT", 0), 123);
    ::unsetenv("SPIM_TEST_ENV_INT");
    EXPECT_EQ(Config::envInt("SPIM_TEST_ENV_INT", 5), 5);

    ::setenv("SPIM_TEST_ENV_FLAG", "1", 1);
    EXPECT_TRUE(Config::envFlag("SPIM_TEST_ENV_FLAG"));
    ::setenv("SPIM_TEST_ENV_FLAG", "0", 1);
    EXPECT_FALSE(Config::envFlag("SPIM_TEST_ENV_FLAG"));
    ::unsetenv("SPIM_TEST_ENV_FLAG");
    EXPECT_FALSE(Config::envFlag("SPIM_TEST_ENV_FLAG"));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(1234);
    std::map<std::uint64_t, int> hist;
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        hist[r.below(8)]++;
    for (auto &[v, count] : hist)
        EXPECT_NEAR(double(count), n / 8.0, n * 0.01) << v;
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

} // namespace
} // namespace streampim
