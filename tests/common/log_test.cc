/**
 * @file
 * Tests for the logging/error substrate.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

namespace streampim
{
namespace
{

TEST(LogLevelControl, DefaultIsWarn)
{
    // The suite might have changed it; set explicitly and check the
    // accessor reflects it.
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Warn);
}

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(SPIM_PANIC("boom ", 42), "panic: boom 42");
}

TEST(LogDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(SPIM_FATAL("bad config ", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LogDeath, AssertIncludesConditionText)
{
    int x = 1;
    EXPECT_DEATH(SPIM_ASSERT(x == 2, "x was ", x),
                 "assertion failed: x == 2");
}

TEST(LogDeath, AssertPassesQuietly)
{
    SPIM_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(LogConcat, FormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a=", 1, " b=", 2.5, " c=", 'x'),
              "a=1 b=2.5 c=x");
}

} // namespace
} // namespace streampim
