/**
 * @file
 * Tests for the statistics substrate.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "rm/energy.hh"

namespace streampim
{
namespace
{

TEST(StatCounter, IncrementAndReset)
{
    StatCounter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatAccumulator, SumMinMaxMean)
{
    StatAccumulator a;
    a.sample(2.0);
    a.sample(6.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(StatAccumulator, EmptyIsZero)
{
    StatAccumulator a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(StatHistogram, BucketsAndOverflow)
{
    StatHistogram h(0.0, 10.0, 5);
    h.sample(0.5);  // bucket 0
    h.sample(9.9);  // bucket 4
    h.sample(-1.0); // underflow
    h.sample(10.0); // overflow (exclusive upper bound)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 4u);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(StatHistogramDeath, BadRangePanics)
{
    EXPECT_DEATH(StatHistogram(5.0, 5.0, 4), "non-empty");
    EXPECT_DEATH(StatHistogram(0.0, 1.0, 0), "bucket");
}

TEST(StatGroup, CountersAreStableReferences)
{
    StatGroup g("device");
    StatCounter &a = g.counter("reads");
    a.inc(3);
    // Creating more stats must not invalidate the reference.
    g.counter("writes").inc(1);
    g.accumulator("latency").sample(2.5);
    a.inc(1);
    EXPECT_EQ(g.findCounter("reads").value(), 4u);
}

TEST(StatGroup, ResetAll)
{
    StatGroup g("x");
    g.counter("c").inc(9);
    g.accumulator("a").sample(1.0);
    g.resetAll();
    EXPECT_EQ(g.findCounter("c").value(), 0u);
    EXPECT_EQ(g.accumulator("a").count(), 0u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("bank0");
    g.counter("reads").inc(7);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("bank0.reads 7"), std::string::npos);
}

TEST(StatGroupDeath, UnknownCounterPanics)
{
    StatGroup g("g");
    EXPECT_DEATH(g.findCounter("nope"), "unknown stat");
}

TEST(EnergyMeterBasics, RecordAndTotal)
{
    EnergyMeter m;
    m.record(EnergyOp::RmRead, 3.8, 10);
    m.record(EnergyOp::PimMul, 0.18, 100);
    EXPECT_EQ(m.count(EnergyOp::RmRead), 10u);
    EXPECT_NEAR(m.energyPj(EnergyOp::PimMul), 18.0, 1e-9);
    EXPECT_NEAR(m.totalPj(), 38.0 + 18.0, 1e-9);
}

TEST(EnergyMeterBasics, MergeAddsAllCategories)
{
    EnergyMeter a, b;
    a.record(EnergyOp::RmWrite, 11.79, 2);
    b.record(EnergyOp::RmWrite, 11.79, 3);
    b.record(EnergyOp::BusShift, 3.26, 1);
    a.merge(b);
    EXPECT_EQ(a.count(EnergyOp::RmWrite), 5u);
    EXPECT_EQ(a.count(EnergyOp::BusShift), 1u);
}

TEST(StatGroupMerge, FoldsCountersAndAccumulators)
{
    StatGroup a("cell0");
    StatGroup b("cell1");
    a.counter("reads").inc(10);
    b.counter("reads").inc(32);
    b.counter("writes").inc(5); // absent in a: created by merge
    a.accumulator("lat").sample(2.0);
    b.accumulator("lat").sample(6.0);
    b.accumulator("lat").sample(4.0);

    a.mergeFrom(b);
    EXPECT_EQ(a.findCounter("reads").value(), 42u);
    EXPECT_EQ(a.findCounter("writes").value(), 5u);
    const auto &lat = a.accumulators().at("lat");
    EXPECT_EQ(lat.count(), 3u);
    EXPECT_DOUBLE_EQ(lat.sum(), 12.0);
    EXPECT_DOUBLE_EQ(lat.min(), 2.0);
    EXPECT_DOUBLE_EQ(lat.max(), 6.0);
    // The source group is untouched.
    EXPECT_EQ(b.findCounter("reads").value(), 32u);
}

TEST(EnergyMeterBasics, NamesAreStable)
{
    EXPECT_STREQ(energyOpName(EnergyOp::RmRead), "rm_read");
    EXPECT_STREQ(energyOpName(EnergyOp::PimMul), "pim_mul");
    EXPECT_STREQ(energyOpName(EnergyOp::BusElectrical),
                 "bus_electrical");
}

} // namespace
} // namespace streampim
