/**
 * @file
 * Unit tests for BitVec, the domain-train bit container.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"

namespace streampim
{
namespace
{

TEST(BitVec, DefaultIsEmpty)
{
    BitVec v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
}

TEST(BitVec, SizedConstructorZeroFills)
{
    BitVec v(9);
    EXPECT_EQ(v.size(), 9u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.get(i));
    EXPECT_EQ(v.toWord(), 0u);
}

TEST(BitVec, InitializerListIsLsbFirst)
{
    BitVec v{1, 0, 1, 1};
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v.toWord(), 0b1101u);
}

TEST(BitVec, FromWordRoundTrip)
{
    for (std::uint64_t w : {0ull, 1ull, 0xA5ull, 0xFFull, 0xDEADBEEFull}) {
        BitVec v = BitVec::fromWord(w, 32);
        EXPECT_EQ(v.toWord(), w) << "word " << w;
    }
}

TEST(BitVec, FromWordTruncatesHighBits)
{
    BitVec v = BitVec::fromWord(0x1FF, 8);
    EXPECT_EQ(v.toWord(), 0xFFu);
}

TEST(BitVec, SetGet)
{
    BitVec v(8);
    v.set(3, true);
    v.set(7, true);
    EXPECT_TRUE(v.get(3));
    EXPECT_TRUE(v.get(7));
    EXPECT_FALSE(v.get(0));
    EXPECT_EQ(v.toWord(), 0b10001000u);
}

TEST(BitVec, PushAppendsAtMsb)
{
    BitVec v;
    v.push(true);
    v.push(false);
    v.push(true);
    EXPECT_EQ(v.toWord(), 0b101u);
}

TEST(BitVec, ResizeZeroExtends)
{
    BitVec v = BitVec::fromWord(0b11, 2);
    v.resize(6);
    EXPECT_EQ(v.size(), 6u);
    EXPECT_EQ(v.toWord(), 0b11u);
}

TEST(BitVec, ResizeTruncates)
{
    BitVec v = BitVec::fromWord(0b1111, 4);
    v.resize(2);
    EXPECT_EQ(v.toWord(), 0b11u);
}

TEST(BitVec, Popcount)
{
    EXPECT_EQ(BitVec::fromWord(0, 8).popcount(), 0u);
    EXPECT_EQ(BitVec::fromWord(0xFF, 8).popcount(), 8u);
    EXPECT_EQ(BitVec::fromWord(0xA5, 8).popcount(), 4u);
}

TEST(BitVec, ToStringIsMsbFirst)
{
    BitVec v = BitVec::fromWord(0b0110, 4);
    EXPECT_EQ(v.toString(), "0b0110");
}

TEST(BitVec, Equality)
{
    EXPECT_EQ(BitVec::fromWord(0x3C, 8), BitVec::fromWord(0x3C, 8));
    EXPECT_NE(BitVec::fromWord(0x3C, 8), BitVec::fromWord(0x3D, 8));
    // Same value, different width: not equal.
    EXPECT_NE(BitVec::fromWord(0x1, 4), BitVec::fromWord(0x1, 5));
}

/** Property: fromWord/toWord round-trips for every 8-bit value. */
class BitVecAllBytes : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVecAllBytes, RoundTrip)
{
    unsigned w = GetParam();
    EXPECT_EQ(BitVec::fromWord(w, 8).toWord(), w);
}

INSTANTIATE_TEST_SUITE_P(AllByteValues, BitVecAllBytes,
                         ::testing::Range(0u, 256u, 17u));

} // namespace
} // namespace streampim
