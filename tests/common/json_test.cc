#include <gtest/gtest.h>

#include "common/json.hh"

using namespace streampim;

TEST(Json, BuildsAndDumpsScalars)
{
    EXPECT_EQ(Json().dump(0), "null");
    EXPECT_EQ(Json(true).dump(0), "true");
    EXPECT_EQ(Json(false).dump(0), "false");
    EXPECT_EQ(Json(42).dump(0), "42");
    EXPECT_EQ(Json(2.5).dump(0), "2.5");
    EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json o = Json::object();
    o["zeta"] = 1;
    o["alpha"] = 2;
    o["mid"] = 3;
    EXPECT_EQ(o.dump(0), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
    ASSERT_EQ(o.members().size(), 3u);
    EXPECT_EQ(o.members()[0].first, "zeta");
}

TEST(Json, NestedStructure)
{
    Json doc = Json::object();
    doc["name"] = "fig17";
    Json cells = Json::array();
    Json c = Json::object();
    c["row"] = "atax";
    c["value"] = 39.1;
    cells.push(std::move(c));
    doc["cells"] = std::move(cells);
    const std::string text = doc.dump(2);
    EXPECT_NE(text.find("\"cells\": ["), std::string::npos);
    EXPECT_NE(text.find("\"row\": \"atax\""), std::string::npos);
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\nd").dump(0),
              "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ParsesScalars)
{
    std::string err;
    EXPECT_TRUE(Json::parse("null", &err).isNull());
    EXPECT_TRUE(err.empty());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_DOUBLE_EQ(Json::parse("-12.5e1").asNumber(), -125.0);
    EXPECT_EQ(Json::parse("\"x\\ny\"").asString(), "x\ny");
}

TEST(Json, ParsesNested)
{
    std::string err;
    Json doc = Json::parse(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}})", &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(doc.isObject());
    const Json *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 3u);
    EXPECT_DOUBLE_EQ(a->at(1).asNumber(), 2.0);
    EXPECT_EQ(a->at(2).find("b")->asString(), "c");
    EXPECT_FALSE(doc.find("d")->find("e")->asBool());
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, RoundTrips)
{
    const std::string text =
        R"({"bench":"fig22","jobs":4,"cells":[{"v":1.25},{"v":3}]})";
    std::string err;
    Json doc = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(doc.dump(0), text);
}

TEST(Json, RejectsMalformedInput)
{
    std::string err;
    Json::parse("{\"a\": }", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("[1, 2", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("12 34", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("\"open", &err);
    EXPECT_FALSE(err.empty());
}

TEST(Json, UnicodeEscapeParses)
{
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
}
