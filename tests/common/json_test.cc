#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"

using namespace streampim;

TEST(Json, BuildsAndDumpsScalars)
{
    EXPECT_EQ(Json().dump(0), "null");
    EXPECT_EQ(Json(true).dump(0), "true");
    EXPECT_EQ(Json(false).dump(0), "false");
    EXPECT_EQ(Json(42).dump(0), "42");
    EXPECT_EQ(Json(2.5).dump(0), "2.5");
    EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json o = Json::object();
    o["zeta"] = 1;
    o["alpha"] = 2;
    o["mid"] = 3;
    EXPECT_EQ(o.dump(0), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
    ASSERT_EQ(o.members().size(), 3u);
    EXPECT_EQ(o.members()[0].first, "zeta");
}

TEST(Json, NestedStructure)
{
    Json doc = Json::object();
    doc["name"] = "fig17";
    Json cells = Json::array();
    Json c = Json::object();
    c["row"] = "atax";
    c["value"] = 39.1;
    cells.push(std::move(c));
    doc["cells"] = std::move(cells);
    const std::string text = doc.dump(2);
    EXPECT_NE(text.find("\"cells\": ["), std::string::npos);
    EXPECT_NE(text.find("\"row\": \"atax\""), std::string::npos);
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\nd").dump(0),
              "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ParsesScalars)
{
    std::string err;
    EXPECT_TRUE(Json::parse("null", &err).isNull());
    EXPECT_TRUE(err.empty());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_DOUBLE_EQ(Json::parse("-12.5e1").asNumber(), -125.0);
    EXPECT_EQ(Json::parse("\"x\\ny\"").asString(), "x\ny");
}

TEST(Json, ParsesNested)
{
    std::string err;
    Json doc = Json::parse(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}})", &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(doc.isObject());
    const Json *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 3u);
    EXPECT_DOUBLE_EQ(a->at(1).asNumber(), 2.0);
    EXPECT_EQ(a->at(2).find("b")->asString(), "c");
    EXPECT_FALSE(doc.find("d")->find("e")->asBool());
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, RoundTrips)
{
    const std::string text =
        R"({"bench":"fig22","jobs":4,"cells":[{"v":1.25},{"v":3}]})";
    std::string err;
    Json doc = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(doc.dump(0), text);
}

TEST(Json, RejectsMalformedInput)
{
    std::string err;
    Json::parse("{\"a\": }", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("[1, 2", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("12 34", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("\"open", &err);
    EXPECT_FALSE(err.empty());
}

TEST(Json, UnicodeEscapeParses)
{
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
}

TEST(Json, NonFiniteNumbersRoundTripAsNull)
{
    // JSON has no NaN/Inf tokens; non-finite doubles serialize as
    // null and come back as tolerated nulls, never as bare tokens
    // that break the parser.
    Json doc = Json::object();
    doc["nan"] = Json(std::nan(""));
    doc["inf"] = Json(std::numeric_limits<double>::infinity());
    doc["neg_inf"] = Json(-std::numeric_limits<double>::infinity());
    doc["ok"] = Json(2.5);
    const std::string text = doc.dump(0);
    EXPECT_EQ(text,
              R"({"nan":null,"inf":null,"neg_inf":null,"ok":2.5})");

    std::string err;
    Json back = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(back.find("nan")->isNull());
    EXPECT_TRUE(back.find("inf")->isNull());
    EXPECT_TRUE(back.find("neg_inf")->isNull());
    EXPECT_EQ(back.find("ok")->asNumber(), 2.5);
    // Second round trip is stable.
    EXPECT_EQ(back.dump(0), text);
}

TEST(Json, AsNumberOrToleratesNull)
{
    Json n(1.5);
    EXPECT_EQ(n.asNumberOr(-1.0), 1.5);
    Json null_value;
    EXPECT_EQ(null_value.asNumberOr(-1.0), -1.0);
}

TEST(JsonDeath, AsNumberOrStillRejectsOtherKinds)
{
    Json s("text");
    EXPECT_DEATH(s.asNumberOr(0.0), "not a number or null");
}
