/**
 * @file
 * Tests for the shift-fault model (the segmentation argument of
 * Sec. III-D) — failure injection included.
 */

#include <gtest/gtest.h>

#include "rm/fault.hh"

namespace streampim
{
namespace
{

TEST(ShiftFault, PulseProbabilityGrowsWithLength)
{
    ShiftFaultModel m(1e-4);
    double prev = 0.0;
    for (unsigned steps : {1u, 64u, 256u, 1024u, 4096u}) {
        double p = m.pulseFaultProbability(steps);
        EXPECT_GT(p, prev);
        EXPECT_LT(p, 1.0);
        prev = p;
    }
}

TEST(ShiftFault, SingleStepMatchesBaseProbability)
{
    ShiftFaultModel m(2e-3);
    EXPECT_NEAR(m.pulseFaultProbability(1), 2e-3, 1e-12);
}

TEST(ShiftFault, ZeroRateNeverFaults)
{
    ShiftFaultModel m(0.0);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(m.samplePulse(rng, 4096), ShiftOutcome::Exact);
    EXPECT_EQ(m.sampleTransferError(rng, 1000, 64), 0);
}

TEST(ShiftFault, SegmentationBoundsPerPulseExposure)
{
    // The Sec. III-D claim: with one pulse per segment, the
    // per-pulse fault probability depends only on the segment size,
    // not the bus length; and expected faults per transfer are
    // nearly identical because the Bernoulli model is
    // per-domain-step.
    ShiftFaultModel m(4.5e-5);
    double segmented = m.expectedFaults(4096, 64);
    double monolithic = m.expectedFaults(4096, 4096);
    // Expected fault *counts* are comparable...
    EXPECT_NEAR(segmented / monolithic, 1.0, 0.15);
    // ...but a monolithic pulse is almost certain to fault at least
    // once, while each segmented pulse is individually safe, which
    // is what lets per-segment retry/ECC recover.
    EXPECT_LT(m.pulseFaultProbability(64), 0.005);
    EXPECT_GT(m.pulseFaultProbability(4096), 0.15);
}

TEST(ShiftFault, SampledErrorIsUnbiasedForSymmetricModel)
{
    ShiftFaultModel m(5e-3, 0.5);
    Rng rng(42);
    long total = 0;
    for (int i = 0; i < 200; ++i)
        total += m.sampleTransferError(rng, 100, 16);
    // Mean error should hover near zero for a symmetric model.
    EXPECT_LT(std::abs(total), 60);
}

TEST(ShiftFault, OverFractionBiasesErrors)
{
    ShiftFaultModel over_only(5e-2, 1.0);
    Rng rng(7);
    long err = over_only.sampleTransferError(rng, 500, 16);
    EXPECT_GT(err, 0);

    ShiftFaultModel under_only(5e-2, 0.0);
    long err2 = under_only.sampleTransferError(rng, 500, 16);
    EXPECT_LT(err2, 0);
}

TEST(ShiftFault, SampledRateMatchesAnalyticRate)
{
    const double p_step = 1e-3;
    const unsigned steps = 128;
    ShiftFaultModel m(p_step);
    Rng rng(123);
    const int pulses = 20000;
    int faults = 0;
    for (int i = 0; i < pulses; ++i)
        faults += m.samplePulse(rng, steps) != ShiftOutcome::Exact;
    double measured = double(faults) / pulses;
    double analytic = m.pulseFaultProbability(steps);
    EXPECT_NEAR(measured, analytic, 0.02);
}

TEST(ShiftFaultDeath, InvalidProbabilitiesPanic)
{
    EXPECT_DEATH(ShiftFaultModel(1.5), "probability");
    EXPECT_DEATH(ShiftFaultModel(0.1, 2.0), "fraction");
}

} // namespace
} // namespace streampim
