/**
 * @file
 * Tests for the save-track write-endurance model: the two-term
 * failure probability, its wear monotonicity, the clamp that keeps
 * retry episodes winnable, and the closed-form expected re-deposit
 * count the timed Executor charges.
 */

#include <gtest/gtest.h>

#include "rm/endurance.hh"
#include "rm/fault_injector.hh"

namespace streampim
{
namespace
{

TEST(WriteFaultModel, DisabledAtZeroFloor)
{
    WriteFaultModel m(0.0, 1e6, 2.0);
    EXPECT_FALSE(m.enabled());
    // A pristine track with no floor cannot fail its first writes.
    EXPECT_DOUBLE_EQ(m.expectedRedeposits(1000), 0.0);
    EXPECT_LT(m.depositFailureProbability(0), 1e-9);
}

TEST(WriteFaultModel, FloorDominatesAtLowWear)
{
    WriteFaultModel m(1e-3, 1e6, 2.0);
    EXPECT_TRUE(m.enabled());
    // Far below the characteristic life the Weibull hazard is
    // negligible: p(w) ~ p0.
    EXPECT_NEAR(m.depositFailureProbability(0), 1e-3, 1e-6);
    EXPECT_NEAR(m.depositFailureProbability(100), 1e-3, 1e-6);
}

TEST(WriteFaultModel, MonotonicInWear)
{
    WriteFaultModel m(1e-4, 1000.0, 3.0);
    double prev = 0.0;
    for (std::uint64_t w : {0ull, 10ull, 100ull, 500ull, 900ull,
                            1000ull, 1500ull, 3000ull}) {
        const double p = m.depositFailureProbability(w);
        EXPECT_GE(p, prev) << "wear " << w;
        EXPECT_GE(p, m.p0()) << "wear " << w;
        prev = p;
    }
    // Deep into wear-out the per-write hazard is substantial.
    EXPECT_GT(m.depositFailureProbability(20000), 0.5);
}

TEST(WriteFaultModel, ClampedBelowOne)
{
    // Even absurd wear must leave a nonzero success probability, so
    // a bounded re-deposit episode is never a guaranteed loss.
    WriteFaultModel m(1e-4, 10.0, 6.0);
    const double p = m.depositFailureProbability(1000000);
    EXPECT_LT(p, 1.0);
    EXPECT_GE(p, 1.0 - 1e-8);
}

TEST(WriteFaultModel, ShapeOneIsMemoryless)
{
    // beta = 1 reduces the Weibull to an exponential: constant
    // hazard, no wear-out.
    WriteFaultModel m(1e-4, 1000.0, 1.0);
    const double p0 = m.depositFailureProbability(0);
    const double p1 = m.depositFailureProbability(5000);
    EXPECT_NEAR(p0, p1, 1e-12);
}

TEST(WriteFaultModel, ExpectedRedepositsIsGeometricOverhead)
{
    WriteFaultModel m(0.01, 1e6, 2.0);
    // Each commit is a geometric trial at the floor:
    // E[extras] = deposits * p0 / (1 - p0).
    EXPECT_NEAR(m.expectedRedeposits(10000),
                10000.0 * 0.01 / 0.99, 1e-9);
    EXPECT_DOUBLE_EQ(m.expectedRedeposits(0), 0.0);
}

TEST(WriteFaultModelDeath, BadParamsPanic)
{
    EXPECT_DEATH(WriteFaultModel(-0.1, 1e6, 2.0), "floor");
    EXPECT_DEATH(WriteFaultModel(1.0, 1e6, 2.0), "floor");
    EXPECT_DEATH(WriteFaultModel(0.0, 0.0, 2.0),
                 "characteristic life");
    EXPECT_DEATH(WriteFaultModel(0.0, 1e6, 0.5), "shape");
}

TEST(FaultInjectorWrite, SampleDepositCountsAndScopes)
{
    FaultConfig cfg;
    cfg.pWrite0 = 0.5;
    cfg.seed = 11;
    FaultInjector inj(cfg);
    EXPECT_FALSE(inj.enabled()); // shift faults off
    EXPECT_TRUE(inj.writeFaultsEnabled());
    EXPECT_TRUE(inj.anyEnabled());

    inj.beginVpc();
    unsigned failures = 0;
    for (int i = 0; i < 200; ++i)
        failures += !inj.sampleDeposit(0);
    VpcFaultInfo info = inj.endVpc();
    EXPECT_EQ(inj.stats().depositPulses, 200u);
    EXPECT_EQ(info.depositPulses, 200u);
    EXPECT_EQ(inj.stats().writeFaultsInjected, failures);
    EXPECT_EQ(info.writeFaultsInjected, failures);
    EXPECT_GT(failures, 50u); // p = 0.5: wildly unlikely otherwise
    EXPECT_LT(failures, 150u);
}

TEST(FaultInjectorWrite, WriteEscalationLadder)
{
    FaultConfig cfg;
    cfg.pWrite0 = 0.5;
    FaultInjector inj(cfg);

    inj.beginVpc();
    inj.noteWriteCorrected(false);
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Corrected);
    inj.noteWriteCorrected(true);
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Retried);
    // Budget exhaustion alone does not fail: the mat may remap.
    inj.noteRedepositExhausted();
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Retried);
    EXPECT_EQ(inj.stats().redepositExhausted, 1u);
    inj.noteRemap(16);
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Retried);
    EXPECT_EQ(inj.stats().trackRemaps, 1u);
    EXPECT_EQ(inj.stats().remapCopyBytes, 16u);
    inj.noteWriteFailed();
    VpcFaultInfo info = inj.endVpc();
    EXPECT_EQ(info.status, FaultStatus::Failed);
    EXPECT_EQ(info.trackRemaps, 1u);
    EXPECT_EQ(inj.stats().writeFailures, 1u);
}

TEST(FaultInjectorWrite, RemapAloneEscalatesToRetried)
{
    FaultConfig cfg;
    cfg.pWrite0 = 0.5;
    FaultInjector inj(cfg);
    inj.beginVpc();
    inj.noteRemap(8);
    EXPECT_EQ(inj.endVpc().status, FaultStatus::Retried);
}

TEST(FaultInjectorWrite, StatsMergeFoldsWriteCounters)
{
    FaultStats a, b;
    a.depositPulses = 10;
    a.redeposits = 2;
    b.depositPulses = 5;
    b.writeFaultsInjected = 3;
    b.trackRemaps = 1;
    b.remapCopyBytes = 64;
    b.writeFailures = 1;
    b.redepositExhausted = 2;
    a.merge(b);
    EXPECT_EQ(a.depositPulses, 15u);
    EXPECT_EQ(a.redeposits, 2u);
    EXPECT_EQ(a.writeFaultsInjected, 3u);
    EXPECT_EQ(a.trackRemaps, 1u);
    EXPECT_EQ(a.remapCopyBytes, 64u);
    EXPECT_EQ(a.writeFailures, 1u);
    EXPECT_EQ(a.redepositExhausted, 2u);
}

TEST(FaultInjectorWriteDeath, BadWriteConfigPanics)
{
    // The injector builds its WriteFaultModel before validate()
    // runs, so the model's own asserts fire first.
    FaultConfig cfg;
    cfg.pWrite0 = 1.0;
    EXPECT_DEATH(FaultInjector{cfg}, "floor");
    cfg = FaultConfig{};
    cfg.writeEndurance = 0.0;
    EXPECT_DEATH(FaultInjector{cfg}, "characteristic life");
    cfg = FaultConfig{};
    cfg.weibullShape = 0.9;
    EXPECT_DEATH(FaultInjector{cfg}, "shape");
    cfg = FaultConfig{};
    cfg.redepositRetryBudget = 0;
    EXPECT_DEATH(FaultInjector{cfg}, "re-deposit");
    cfg = FaultConfig{};
    cfg.remapAfterExhaustions = 0;
    EXPECT_DEATH(FaultInjector{cfg}, "remap");
}

} // namespace
} // namespace streampim
