/**
 * @file
 * Tests for the racetrack nanowire functional model.
 */

#include <gtest/gtest.h>

#include "rm/fault_injector.hh"
#include "rm/nanowire.hh"

namespace streampim
{
namespace
{

TEST(Nanowire, GeometryDerivation)
{
    Nanowire w(256, 64);
    EXPECT_EQ(w.dataDomains(), 256u);
    EXPECT_EQ(w.ports(), 4u);
    EXPECT_EQ(w.offset(), 0);
}

TEST(Nanowire, FirstDomainOfEachGroupIsAlignedAtRest)
{
    Nanowire w(256, 64);
    EXPECT_TRUE(w.alignedAtPort(0));
    EXPECT_TRUE(w.alignedAtPort(64));
    EXPECT_TRUE(w.alignedAtPort(128));
    EXPECT_FALSE(w.alignedAtPort(1));
    EXPECT_FALSE(w.alignedAtPort(63));
}

TEST(Nanowire, AlignShiftsByOffsetWithinGroup)
{
    Nanowire w(256, 64);
    EXPECT_EQ(w.alignToPort(5), 5u);
    EXPECT_TRUE(w.alignedAtPort(5));
    // The same offset aligns the peer domain in every group.
    EXPECT_TRUE(w.alignedAtPort(64 + 5));
}

TEST(Nanowire, ReadWriteThroughPort)
{
    Nanowire w(128, 64);
    w.alignToPort(10);
    w.write(10, true);
    EXPECT_TRUE(w.read(10));
    w.alignToPort(0);
    w.alignToPort(10);
    EXPECT_TRUE(w.read(10)); // data survives shifting away and back
}

TEST(Nanowire, ShiftStepsAreCounted)
{
    Nanowire w(128, 64);
    EXPECT_EQ(w.totalShiftSteps(), 0u);
    w.alignToPort(63); // 63 steps toward lower
    EXPECT_EQ(w.totalShiftSteps(), 63u);
    w.alignToPort(0);  // 63 steps back
    EXPECT_EQ(w.totalShiftSteps(), 126u);
}

TEST(Nanowire, StepsToAlignSigns)
{
    Nanowire w(128, 64);
    EXPECT_EQ(w.stepsToAlign(7), -7);
    w.alignToPort(7);
    EXPECT_EQ(w.stepsToAlign(7), 0);
    EXPECT_EQ(w.stepsToAlign(3), 4); // shift back toward higher
}

TEST(Nanowire, BulkReadWriteRoundTrip)
{
    Nanowire w(64, 64);
    BitVec data = BitVec::fromWord(0xDEADBEEF, 32);
    data.resize(64);
    w.writeAll(data);
    EXPECT_EQ(w.readAll(), data);
}

TEST(NanowireDeath, OverShiftPanics)
{
    Nanowire w(128, 64);
    // Reserved span is one port group (64); 65 steps falls off.
    EXPECT_DEATH(w.shift(ShiftDir::TowardLower, 65), "over-shift");
}

TEST(NanowireDeath, OverShiftPanicNamesOffsetAndBounds)
{
    Nanowire w(128, 64);
    // The message must name the attempted offset and the reserved
    // region so a failing run is diagnosable without a debugger.
    EXPECT_DEATH(
        w.shift(ShiftDir::TowardLower, 65),
        "attempted offset -65 .*outside reserved region "
        "\\[-64, 64\\]");
}

TEST(Nanowire, TryShiftWithoutInjectorMatchesShift)
{
    Nanowire a(128, 64), b(128, 64);
    a.shift(ShiftDir::TowardHigher, 10);
    ShiftAttempt att = b.tryShift(ShiftDir::TowardHigher, 10, nullptr);
    EXPECT_EQ(att.outcome, ShiftOutcome::Exact);
    EXPECT_EQ(att.applied, 10);
    EXPECT_FALSE(att.clamped);
    EXPECT_EQ(a.offset(), b.offset());
    EXPECT_EQ(a.totalShiftSteps(), b.totalShiftSteps());
}

TEST(Nanowire, TryShiftOverShiftLandsOnePastTarget)
{
    FaultConfig cfg;
    cfg.pStep = 0.999999;
    cfg.overFraction = 1.0;
    FaultInjector inj(cfg);
    Nanowire w(128, 64);
    ShiftAttempt att = w.tryShift(ShiftDir::TowardHigher, 10, &inj);
    EXPECT_EQ(att.outcome, ShiftOutcome::OverShift);
    EXPECT_EQ(att.applied, 11);
    EXPECT_EQ(w.offset(), 11);
}

TEST(Nanowire, TryShiftUnderShiftStopsOneShort)
{
    FaultConfig cfg;
    cfg.pStep = 0.999999;
    cfg.overFraction = 0.0;
    FaultInjector inj(cfg);
    Nanowire w(128, 64);
    ShiftAttempt att = w.tryShift(ShiftDir::TowardLower, 10, &inj);
    EXPECT_EQ(att.outcome, ShiftOutcome::UnderShift);
    EXPECT_EQ(att.applied, -9);
    EXPECT_EQ(w.offset(), -9);
}

TEST(Nanowire, TryShiftClampsFaultyTravelAtWireEnd)
{
    FaultConfig cfg;
    cfg.pStep = 0.999999;
    cfg.overFraction = 1.0;
    FaultInjector inj(cfg);
    Nanowire w(128, 64);
    // Intended target is the reserved boundary itself; the faulty
    // extra step pins at the physical end instead of panicking.
    ShiftAttempt att = w.tryShift(ShiftDir::TowardHigher, 64, &inj);
    EXPECT_TRUE(att.clamped);
    EXPECT_EQ(w.offset(), 64);
    EXPECT_EQ(inj.stats().clampedAtWireEnd, 1u);
}

TEST(Nanowire, TryShiftIllegalIntentUnderInjectionIsRecoverable)
{
    // With a live injector, an intended target outside the reserved
    // region (the caller's position view drifted under injection)
    // must never abort the process: the interlock pins travel at
    // the wire end and escalates the scoped VPC to Failed so the
    // recovery ladder handles it.
    FaultConfig cfg;
    // Injection live (pStep > 0) but vanishingly unlikely to fire,
    // so the pulse itself deterministically lands exactly.
    cfg.pStep = 1e-12;
    FaultInjector inj(cfg);
    Nanowire w(128, 64);
    inj.beginVpc();
    ShiftAttempt att = w.tryShift(ShiftDir::TowardLower, 65, &inj);
    VpcFaultInfo info = inj.endVpc();
    EXPECT_TRUE(att.overtravel);
    EXPECT_TRUE(att.clamped);
    EXPECT_EQ(w.offset(), -64); // pinned at the wire end
    EXPECT_EQ(att.applied, -64);
    EXPECT_EQ(inj.stats().overtravelInterlocks, 1u);
    EXPECT_EQ(inj.stats().clampedAtWireEnd, 1u);
    EXPECT_EQ(info.status, FaultStatus::Failed);
    // The wire remains usable after the interlock fired.
    w.shift(ShiftDir::TowardHigher, 64);
    EXPECT_EQ(w.offset(), 0);
}

TEST(NanowireDeath, ShiftIllegalIntentWithoutInjectorStillPanics)
{
    // Without a live injector the same intent cannot come from a
    // fault sample — it is a true caller bug and must keep
    // panicking (both the plain and the fallible entry points).
    Nanowire w(128, 64);
    EXPECT_DEATH(w.shift(ShiftDir::TowardLower, 65), "over-shift");
    FaultConfig cfg;
    cfg.pStep = 0.0; // disabled injector: the fallible entry point
    FaultInjector inj(cfg); // degrades to the infallible shift()
    Nanowire w2(128, 64);
    EXPECT_DEATH(w2.tryShift(ShiftDir::TowardLower, 65, &inj),
                 "over-shift");
}

TEST(Nanowire, MisalignedPortSensesNeighborDomain)
{
    Nanowire w(128, 64);
    BitVec data(128);
    data.set(9, true);
    w.writeAll(data);
    // Align domain 10, then slip the train one extra position: the
    // port of domain 10's group now senses logical domain 9.
    w.alignToPort(10);
    w.shift(ShiftDir::TowardHigher, 1);
    EXPECT_FALSE(w.alignedAtPort(10));
    EXPECT_TRUE(w.senseAtPortOf(10));
    // A write through the misaligned port lands in domain 9 too.
    w.writeAtPortOf(10, false);
    w.alignToPort(9);
    EXPECT_FALSE(w.read(9));
}

TEST(NanowireDeath, MisalignedReadPanics)
{
    Nanowire w(128, 64);
    EXPECT_DEATH(w.read(5), "misaligned");
}

TEST(NanowireDeath, MisalignedWritePanics)
{
    Nanowire w(128, 64);
    EXPECT_DEATH(w.write(5, true), "misaligned");
}

TEST(NanowireDeath, BadGeometryPanics)
{
    EXPECT_DEATH(Nanowire(100, 64), "multiple");
}

/** Property: aligning any domain then reading back what was written. */
class NanowireSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(NanowireSweep, WriteReadAnyDomain)
{
    Nanowire w(256, 64);
    unsigned idx = GetParam();
    w.alignToPort(idx);
    w.write(idx, true);
    w.alignToPort((idx + 64) % 256);
    w.alignToPort(idx);
    EXPECT_TRUE(w.read(idx));
}

INSTANTIATE_TEST_SUITE_P(DomainSweep, NanowireSweep,
                         ::testing::Values(0u, 1u, 31u, 63u, 64u, 100u,
                                           127u, 200u, 255u));

} // namespace
} // namespace streampim
