/**
 * @file
 * Tests for the sampled shift-fault injector and the shared
 * realignment episode.
 */

#include <gtest/gtest.h>

#include "rm/fault_injector.hh"

namespace streampim
{
namespace
{

FaultConfig
heavyConfig()
{
    FaultConfig cfg;
    cfg.pStep = 0.9;
    cfg.overFraction = 1.0; // every fault over-shifts
    cfg.guardCoverage = 1.0;
    cfg.seed = 42;
    return cfg;
}

TEST(FaultInjector, DisabledAtZeroPStep)
{
    FaultConfig cfg;
    cfg.pStep = 0.0;
    FaultInjector inj(cfg);
    EXPECT_FALSE(inj.enabled());
    // Sampling still works and is always exact.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(inj.samplePulse(64), ShiftOutcome::Exact);
    EXPECT_EQ(inj.stats().faultsInjected, 0u);
    EXPECT_EQ(inj.stats().pulses, 100u);
}

TEST(FaultInjector, SameSeedSameOutcomeSequence)
{
    FaultConfig cfg;
    cfg.pStep = 0.01;
    cfg.seed = 123;
    FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 5000; ++i)
        ASSERT_EQ(a.samplePulse(32), b.samplePulse(32));
    EXPECT_EQ(a.stats().faultsInjected, b.stats().faultsInjected);
    EXPECT_EQ(a.stats().overShifts, b.stats().overShifts);
}

TEST(FaultInjector, CountersClassifyOutcomes)
{
    FaultInjector inj(heavyConfig());
    for (int i = 0; i < 200; ++i)
        inj.samplePulse(64);
    const FaultStats &s = inj.stats();
    EXPECT_EQ(s.pulses, 200u);
    EXPECT_GT(s.faultsInjected, 0u);
    EXPECT_EQ(s.faultsInjected, s.overShifts); // overFraction = 1
    EXPECT_EQ(s.underShifts, 0u);
}

TEST(FaultInjector, InFlightCheckHonorsCoverage)
{
    FaultConfig cfg;
    cfg.pStep = 0.01;
    cfg.guardCoverage = 1.0;
    FaultInjector inj(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(inj.inFlightCheck());
    EXPECT_EQ(inj.stats().guardChecks, 100u);
    EXPECT_EQ(inj.stats().checksMissed, 0u);

    cfg.guardCoverage = 1e-9; // essentially never detects
    FaultInjector blind(cfg);
    unsigned detected = 0;
    for (int i = 0; i < 100; ++i)
        detected += blind.inFlightCheck();
    EXPECT_EQ(detected, 0u);
    EXPECT_EQ(blind.stats().checksMissed, 100u);
}

TEST(FaultInjector, ScopeStatusEscalation)
{
    FaultConfig cfg;
    cfg.pStep = 0.01;
    FaultInjector inj(cfg);

    inj.beginVpc();
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Clean);
    inj.noteCorrected();
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Corrected);
    inj.noteRetry();
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Retried);
    inj.noteCorrected(); // cannot downgrade
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Retried);
    inj.noteBudgetExhausted();
    EXPECT_EQ(inj.currentInfo().status, FaultStatus::Failed);
    VpcFaultInfo info = inj.endVpc();
    EXPECT_EQ(info.status, FaultStatus::Failed);
    EXPECT_EQ(info.faultsCorrected, 2u);
    EXPECT_EQ(info.realignRetries, 1u);
    EXPECT_FALSE(inj.scopeActive());
}

TEST(FaultInjector, VpcInfoMergeTakesWorstStatus)
{
    VpcFaultInfo a;
    a.status = FaultStatus::Corrected;
    a.faultsInjected = 3;
    VpcFaultInfo b;
    b.status = FaultStatus::Failed;
    b.faultsInjected = 1;
    a.merge(b);
    EXPECT_EQ(a.status, FaultStatus::Failed);
    EXPECT_EQ(a.faultsInjected, 4u);

    VpcFaultInfo c; // Clean cannot downgrade Failed
    a.merge(c);
    EXPECT_EQ(a.status, FaultStatus::Failed);
}

TEST(RealignEpisode, CorrectsWithReliableShifts)
{
    FaultConfig cfg;
    cfg.pStep = 0.0; // compensating shifts always land
    FaultInjector inj(cfg);
    inj.beginVpc();
    EXPECT_EQ(realignEpisode(inj, 1), 0);
    EXPECT_EQ(realignEpisode(inj, -1), 0);
    EXPECT_EQ(inj.stats().correctionShifts, 2u);
    EXPECT_EQ(inj.stats().realignRetries, 0u);
    VpcFaultInfo info = inj.endVpc();
    EXPECT_EQ(info.status, FaultStatus::Corrected);
    EXPECT_EQ(info.faultsCorrected, 2u);
}

TEST(RealignEpisode, ErrorBeyondGuardRangeFails)
{
    FaultConfig cfg;
    cfg.pStep = 0.0;
    cfg.guardDomains = 2; // localizes only |error| <= 1
    FaultInjector inj(cfg);
    inj.beginVpc();
    EXPECT_EQ(realignEpisode(inj, 3), 3);
    EXPECT_EQ(inj.stats().uncorrectable, 1u);
    EXPECT_EQ(inj.endVpc().status, FaultStatus::Failed);
}

TEST(RealignEpisode, WiderGuardCorrectsMultiStepErrors)
{
    FaultConfig cfg;
    cfg.pStep = 0.0;
    cfg.guardDomains = 4; // localizes up to |error| = 3
    FaultInjector inj(cfg);
    inj.beginVpc();
    EXPECT_EQ(realignEpisode(inj, 3), 0);
    EXPECT_EQ(inj.stats().correctionShifts, 3u);
    EXPECT_EQ(inj.endVpc().status, FaultStatus::Corrected);
}

TEST(RealignEpisode, BudgetExhaustionFails)
{
    FaultConfig cfg;
    cfg.pStep = 0.9999;      // compensating shifts nearly always fault
    cfg.overFraction = 0.0;  // always under-shift: the train never moves
    cfg.realignRetryBudget = 3;
    cfg.seed = 9;
    FaultInjector inj(cfg);
    inj.beginVpc();
    EXPECT_NE(realignEpisode(inj, 1), 0);
    EXPECT_EQ(inj.stats().budgetExhausted, 1u);
    EXPECT_EQ(inj.stats().realignRetries, 2u); // attempts 2 and 3
    EXPECT_EQ(inj.endVpc().status, FaultStatus::Failed);
}

TEST(FaultInjectorDeath, BadConfigPanics)
{
    FaultConfig cfg;
    cfg.guardDomains = 1;
    EXPECT_DEATH(FaultInjector{cfg}, "guard domains");
    cfg = FaultConfig{};
    cfg.realignRetryBudget = 0;
    EXPECT_DEATH(FaultInjector{cfg}, "budget");
    cfg = FaultConfig{};
    cfg.guardCoverage = 0.0;
    EXPECT_DEATH(FaultInjector{cfg}, "coverage");
}

TEST(FaultInjectorDeath, NestedScopePanics)
{
    FaultConfig cfg;
    FaultInjector inj(cfg);
    inj.beginVpc();
    EXPECT_DEATH(inj.beginVpc(), "nested");
}

} // namespace
} // namespace streampim
