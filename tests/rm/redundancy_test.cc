/**
 * @file
 * Tests for the guard-domain realignment model (error tolerance).
 */

#include <gtest/gtest.h>

#include "rm/redundancy.hh"

namespace streampim
{
namespace
{

TEST(SegmentGuard, OverheadFraction)
{
    SegmentGuard g(2);
    EXPECT_DOUBLE_EQ(g.overheadFraction(1024), 2.0 / 1024);
    EXPECT_DOUBLE_EQ(g.overheadFraction(64), 2.0 / 64);
}

TEST(SegmentGuard, NoFaultsNoCorrections)
{
    SegmentGuard g;
    ShiftFaultModel none(0.0);
    Rng rng(1);
    auto stats = g.run(rng, none, 1000, 64);
    EXPECT_EQ(stats.faultsInjected, 0u);
    EXPECT_EQ(stats.faultsCorrected, 0u);
    EXPECT_TRUE(stats.dataIntact());
    EXPECT_EQ(stats.guardChecks, 1000u);
}

TEST(SegmentGuard, PerfectCoverageCorrectsEverything)
{
    SegmentGuard g(2, 1.0);
    ShiftFaultModel noisy(5e-3);
    Rng rng(7);
    auto stats = g.run(rng, noisy, 20000, 64);
    EXPECT_GT(stats.faultsInjected, 0u);
    EXPECT_EQ(stats.faultsCorrected, stats.faultsInjected);
    EXPECT_TRUE(stats.dataIntact());
    EXPECT_EQ(stats.correctionShifts, stats.faultsInjected);
}

TEST(SegmentGuard, ImperfectCoverageCanLeaveResidual)
{
    SegmentGuard g(2, 0.5);
    ShiftFaultModel noisy(2e-2);
    Rng rng(11);
    std::uint64_t corrected = 0, injected = 0;
    for (int i = 0; i < 20; ++i) {
        auto stats = g.run(rng, noisy, 2000, 64);
        corrected += stats.faultsCorrected;
        injected += stats.faultsInjected;
    }
    EXPECT_LT(corrected, injected);
}

TEST(SegmentGuard, CorrectionRateMatchesFaultRate)
{
    SegmentGuard g(2, 1.0);
    const double p = 1e-3;
    ShiftFaultModel noisy(p);
    Rng rng(3);
    const std::uint64_t pulses = 50000;
    const unsigned steps = 64;
    auto stats = g.run(rng, noisy, pulses, steps);
    double expected =
        double(pulses) * noisy.pulseFaultProbability(steps);
    EXPECT_NEAR(double(stats.faultsInjected), expected,
                expected * 0.2);
}

TEST(SegmentGuard, UncorrectableErrorsAreCountedAndAbandoned)
{
    // Low coverage lets consecutive missed checks accumulate the
    // misalignment past the guard's range (|error| > 1 for 2 guard
    // domains); the run must count the event and stop pretending it
    // can correct.
    SegmentGuard g(2, 0.2);
    ShiftFaultModel noisy(5e-2);
    Rng rng(13);
    std::uint64_t uncorrectable = 0;
    std::uint64_t checks = 0, pulses = 0;
    for (int i = 0; i < 50; ++i) {
        auto stats = g.run(rng, noisy, 2000, 64);
        uncorrectable += stats.faultsUncorrectable;
        checks += stats.guardChecks;
        pulses += stats.pulses;
    }
    EXPECT_GT(uncorrectable, 0u);
    // Abandoned transfers stop checking, so fewer checks than
    // pulses across the batch.
    EXPECT_LT(checks, pulses);
}

TEST(SegmentGuard, WiderGuardSurvivesAccumulatedErrors)
{
    // With the same fault stream, a 4-domain guard (localizes up to
    // |error| = 3) abandons far fewer transfers than a 2-domain one.
    ShiftFaultModel noisy(1e-3);
    std::uint64_t narrow = 0, wide = 0;
    for (int i = 0; i < 50; ++i) {
        Rng rng_n(100 + i), rng_w(100 + i);
        narrow +=
            SegmentGuard(2, 0.3).run(rng_n, noisy, 2000, 64)
                .faultsUncorrectable;
        wide +=
            SegmentGuard(4, 0.3).run(rng_w, noisy, 2000, 64)
                .faultsUncorrectable;
    }
    EXPECT_GT(narrow, 0u);
    EXPECT_LT(wide, narrow);
}

TEST(SegmentGuard, MultiStepRealignmentCostsOneShiftPerPosition)
{
    // Coverage < 1 with a wide guard produces detections at
    // |error| > 1; every corrected episode must cost exactly its
    // magnitude in compensating shifts.
    SegmentGuard g(4, 0.5);
    ShiftFaultModel noisy(2e-2);
    Rng rng(17);
    auto stats = g.run(rng, noisy, 50000, 64);
    EXPECT_GT(stats.faultsCorrected, 0u);
    EXPECT_EQ(stats.correctionShifts, stats.faultsCorrected);
}

TEST(SegmentGuardDeath, BadParametersPanic)
{
    EXPECT_DEATH(SegmentGuard(1), "guard domains");
    EXPECT_DEATH(SegmentGuard(2, 0.0), "coverage");
    EXPECT_DEATH(SegmentGuard(2, 1.5), "coverage");
}

} // namespace
} // namespace streampim
