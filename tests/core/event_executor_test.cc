/**
 * @file
 * Direct tests of the reference executor (beyond cross-validation).
 */

#include <gtest/gtest.h>

#include "core/event_executor.hh"

namespace streampim
{
namespace
{

SystemConfig
quietConfig()
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.vpcIssueTicks = 0;
    return cfg;
}

TEST(EventExecutor, EmptySchedule)
{
    EventExecutor ex(quietConfig());
    auto r = ex.run(VpcSchedule{});
    EXPECT_EQ(r.makespan, 0u);
    EXPECT_TRUE(r.batchDone.empty());
}

TEST(EventExecutor, SingleBatchCompletionEqualsMakespan)
{
    EventExecutor ex(quietConfig());
    VpcSchedule s;
    VpcBatch b;
    b.kind = VpcKind::Add;
    b.subarray = 0;
    b.vpcCount = 3;
    b.vectorLen = 100;
    s.push(b);
    auto r = ex.run(s);
    ASSERT_EQ(r.batchDone.size(), 1u);
    EXPECT_EQ(r.batchDone[0], r.makespan);
    EXPECT_GT(r.makespan, 0u);
}

TEST(EventExecutor, DependencyOrdersCompletions)
{
    EventExecutor ex(quietConfig());
    VpcSchedule s;
    VpcBatch first;
    first.kind = VpcKind::Mul;
    first.subarray = 0;
    first.vpcCount = 1;
    first.vectorLen = 500;
    auto a = s.push(first);
    VpcBatch second = first;
    second.subarray = 1;
    second.depA = a;
    s.push(second);
    auto r = ex.run(s);
    EXPECT_GT(r.batchDone[1], r.batchDone[0]);
}

TEST(EventExecutor, BarrierDominatesEarlierBatches)
{
    EventExecutor ex(quietConfig());
    VpcSchedule s;
    for (unsigned i = 0; i < 4; ++i) {
        VpcBatch b;
        b.kind = VpcKind::Mul;
        b.subarray = i;
        b.vpcCount = 1;
        b.vectorLen = 100 * (i + 1);
        s.push(b);
    }
    VpcBatch fence;
    fence.kind = VpcKind::Add;
    fence.subarray = 10;
    fence.vpcCount = 1;
    fence.vectorLen = 1;
    fence.barrier = true;
    s.push(fence);
    auto r = ex.run(s);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GT(r.batchDone[4], r.batchDone[i]);
}

TEST(EventExecutor, DeterministicAcrossRuns)
{
    EventExecutor ex(quietConfig());
    VpcSchedule s;
    for (unsigned i = 0; i < 16; ++i) {
        VpcBatch b;
        b.kind = i % 2 ? VpcKind::Tran : VpcKind::Mul;
        b.subarray = i % 4;
        b.dstSubarray = (i + 1) % 4;
        b.vpcCount = 1 + i;
        b.vectorLen = 10 + i;
        s.push(b);
    }
    auto r1 = ex.run(s);
    auto r2 = ex.run(s);
    EXPECT_EQ(r1.makespan, r2.makespan);
    EXPECT_EQ(r1.batchDone, r2.batchDone);
}

} // namespace
} // namespace streampim
