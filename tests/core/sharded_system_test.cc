/**
 * @file
 * Tests for the multi-device sharding layer: ShardedSystem's
 * two-level drain, the row-block matmul/element-wise runners, and
 * the sharded campaign routing. The headline invariants:
 *
 *  - bit-exactness: sharded outputs equal the host reference and
 *    the unsharded single-device run at EVERY fleet size, including
 *    the edge shapes (n not divisible by devices, n < devices,
 *    n == 1, blocks that still re-tile within one device);
 *  - schedule independence: records, statistics and memory images
 *    are byte-identical at any (deviceJobs x engineJobs);
 *  - fleet-size independence: device d's fault/endurance trajectory
 *    depends only on (seed, d), so growing the fleet never perturbs
 *    an existing device, and device 0 IS the unsharded system.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/rng.hh"
#include "core/fault_campaign.hh"
#include "core/sharded_system.hh"

namespace streampim
{
namespace
{

std::vector<std::uint8_t>
patternMatrix(std::size_t bytes, unsigned salt)
{
    std::vector<std::uint8_t> m(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
        m[i] = std::uint8_t(i * 31 + salt);
    return m;
}

std::vector<std::uint8_t>
shardedProduct(unsigned devices, std::uint32_t n, std::uint32_t k,
               std::uint32_t m, ShardedMatmulStats *stats = nullptr)
{
    const auto a = patternMatrix(std::uint64_t(n) * k, 7);
    const auto b = patternMatrix(std::uint64_t(k) * m, 3);
    ShardedSystem sys(smallFunctionalParams(), devices);
    return runShardedMatmul(sys, a, b, n, k, m,
                            ShardedMatmulConfig{}, stats);
}

void
expectCampaignEq(const FaultCampaignResult &x,
                 const FaultCampaignResult &y, const char *what)
{
    EXPECT_EQ(x.clean, y.clean) << what;
    EXPECT_EQ(x.corrected, y.corrected) << what;
    EXPECT_EQ(x.retried, y.retried) << what;
    EXPECT_EQ(x.failed, y.failed) << what;
    EXPECT_EQ(x.mismatchedRecovered, y.mismatchedRecovered) << what;
    EXPECT_EQ(x.failedButIntact, y.failedButIntact) << what;
    EXPECT_EQ(x.stats.pulses, y.stats.pulses) << what;
    EXPECT_EQ(x.stats.faultsInjected, y.stats.faultsInjected)
        << what;
    EXPECT_EQ(x.stats.depositPulses, y.stats.depositPulses) << what;
    EXPECT_EQ(x.stats.writeFaultsInjected,
              y.stats.writeFaultsInjected)
        << what;
    ASSERT_EQ(x.perVpc.size(), y.perVpc.size()) << what;
    for (std::size_t i = 0; i < x.perVpc.size(); ++i) {
        EXPECT_EQ(x.perVpc[i].status, y.perVpc[i].status)
            << what << " vpc " << i;
        EXPECT_EQ(x.perVpc[i].bitExact, y.perVpc[i].bitExact)
            << what << " vpc " << i;
    }
}

void
expectEnduranceEq(const EnduranceCampaignResult &x,
                  const EnduranceCampaignResult &y,
                  const char *what)
{
    EXPECT_EQ(x.clean, y.clean) << what;
    EXPECT_EQ(x.corrected, y.corrected) << what;
    EXPECT_EQ(x.retried, y.retried) << what;
    EXPECT_EQ(x.failed, y.failed) << what;
    EXPECT_EQ(x.mismatchedRecovered, y.mismatchedRecovered) << what;
    EXPECT_EQ(x.firstFailedVpc, y.firstFailedVpc) << what;
    EXPECT_EQ(x.firstFailedRound, y.firstFailedRound) << what;
    EXPECT_EQ(x.firstFailedDeposits, y.firstFailedDeposits) << what;
    EXPECT_EQ(x.stats.depositPulses, y.stats.depositPulses) << what;
    EXPECT_EQ(x.stats.writeFaultsInjected,
              y.stats.writeFaultsInjected)
        << what;
    EXPECT_EQ(x.stats.redeposits, y.stats.redeposits) << what;
    EXPECT_EQ(x.stats.trackRemaps, y.stats.trackRemaps) << what;
    EXPECT_EQ(x.finalHomes, y.finalHomes) << what;
    EXPECT_EQ(x.rounds(), y.rounds()) << what;
}

/** Shift+write fault knobs that actually fire on the campaign. */
FaultCampaignConfig
faultyBase()
{
    FaultCampaignConfig base;
    base.pStep = 2e-4;
    base.pWrite0 = 1e-3;
    base.writeEndurance = 400.0;
    base.weibullShape = 3.0;
    base.seed = 0x5eed5;
    return base;
}

} // namespace

TEST(ShardedSystem, DeviceSeedIsPureAndDecorrelated)
{
    const std::uint64_t seed = 0xfeedULL;
    // Device 0 keeps the master seed: a 1-device fleet IS the
    // single-device system.
    EXPECT_EQ(ShardedSystem::deviceSeed(seed, 0), seed);
    // Higher devices decorrelate, distinctly, and purely as a
    // function of (seed, device) — never of any fleet size.
    for (unsigned d = 1; d < 16; ++d) {
        EXPECT_NE(ShardedSystem::deviceSeed(seed, d), seed)
            << "d=" << d;
        for (unsigned e = d + 1; e < 16; ++e)
            EXPECT_NE(ShardedSystem::deviceSeed(seed, d),
                      ShardedSystem::deviceSeed(seed, e))
                << d << " vs " << e;
    }
}

TEST(ShardedSystem, DefaultDevicesReadsEnvironment)
{
    unsetenv("STREAMPIM_DEVICES");
    EXPECT_EQ(ShardedSystem::defaultDevices(), 1u);
    setenv("STREAMPIM_DEVICES", "3", 1);
    EXPECT_EQ(ShardedSystem::defaultDevices(), 3u);
    ShardedSystem sys; // devices = 0 resolves the env default
    EXPECT_EQ(sys.devices(), 3u);
    EXPECT_EQ(sys.capacityBytes(),
              3 * sys.params().totalBytes());
    unsetenv("STREAMPIM_DEVICES");
}

TEST(ShardedSystem, MatmulBitExactAtEveryFleetSize)
{
    // Odd shapes: remainder blocks, n < devices, a single row.
    struct Shape
    {
        std::uint32_t n, k, m;
    };
    const Shape shapes[] = {
        {33, 17, 9}, // remainder at every fleet size
        {3, 8, 2},   // n < devices for the larger fleets
        {1, 5, 4},   // single row: one active device
        {10, 6, 5},
    };
    for (const Shape &s : shapes) {
        const auto a = patternMatrix(std::uint64_t(s.n) * s.k, 7);
        const auto b = patternMatrix(std::uint64_t(s.k) * s.m, 3);
        const auto want =
            hostMatmulReference(a, b, s.n, s.k, s.m);
        for (unsigned devices : {1u, 2u, 4u, 8u}) {
            SCOPED_TRACE(testing::Message()
                         << s.n << "x" << s.k << "x" << s.m << " @"
                         << devices);
            ShardedMatmulStats st;
            EXPECT_EQ(
                shardedProduct(devices, s.n, s.k, s.m, &st), want);
            // Ceil-division may leave more than devices - n shards
            // idle (e.g. 33 rows over 8 devices: 5-row blocks fill
            // 7 devices), but never uses more than min(devices, n).
            EXPECT_GE(st.activeDevices, 1u);
            EXPECT_LE(st.activeDevices, std::min(devices, s.n));
            EXPECT_EQ(st.mergedBytes,
                      std::uint64_t(s.n) * s.m);
        }
    }
}

TEST(ShardedSystem, MatmulRetilesWithinEachShard)
{
    // 80 rows over 2 devices: each 40-row block still exceeds the
    // small geometry's 32-element tile edge, so every device
    // re-tiles internally — sharding on top, tiling below.
    const std::uint32_t n = 80, k = 64, m = 48;
    const auto a = patternMatrix(std::uint64_t(n) * k, 7);
    const auto b = patternMatrix(std::uint64_t(k) * m, 3);

    ShardedSystem sys(smallFunctionalParams(), 2);
    ShardedMatmulStats st;
    const auto c = runShardedMatmul(sys, a, b, n, k, m,
                                    ShardedMatmulConfig{}, &st);
    EXPECT_EQ(c, hostMatmulReference(a, b, n, k, m));
    EXPECT_EQ(st.activeDevices, 2u);
    for (unsigned d = 0; d < 2; ++d)
        EXPECT_GT(st.perDevice[d].tileTasks, 1u)
            << "device " << d << " did not tile internally";
    EXPECT_EQ(st.tileTasks, st.perDevice[0].tileTasks +
                                st.perDevice[1].tileTasks);
}

TEST(ShardedSystem, VectorAddBitExactAtEveryFleetSize)
{
    const std::size_t elements = 1000;
    std::vector<std::uint8_t> a(elements), b(elements);
    for (std::size_t i = 0; i < elements; ++i) {
        a[i] = std::uint8_t(i * 13 + 5);
        b[i] = std::uint8_t(i * 7 + 11);
    }
    std::vector<std::uint8_t> want(elements);
    for (std::size_t i = 0; i < elements; ++i)
        want[i] = std::uint8_t(a[i] + b[i]);

    for (unsigned devices : {1u, 3u, 8u}) {
        SCOPED_TRACE(testing::Message() << "devices=" << devices);
        ShardedSystem sys(smallFunctionalParams(), devices);
        ShardedElementwiseStats st;
        EXPECT_EQ(runShardedVectorAdd(sys, a, b, 0, 0, &st), want);
        EXPECT_EQ(st.activeDevices, devices);
        EXPECT_EQ(st.mergedBytes, elements);
    }

    // Fewer elements than devices: the tail idles, result intact.
    const std::vector<std::uint8_t> tiny_a = {1, 2, 3};
    const std::vector<std::uint8_t> tiny_b = {10, 20, 30};
    ShardedSystem sys(smallFunctionalParams(), 8);
    ShardedElementwiseStats st;
    const auto c = runShardedVectorAdd(sys, tiny_a, tiny_b, 0, 0,
                                       &st);
    EXPECT_EQ(c, (std::vector<std::uint8_t>{11, 22, 33}));
    EXPECT_EQ(st.activeDevices, 3u);
}

TEST(ShardedSystem, ProcessAllByteIdenticalAcrossSplits)
{
    // One faulty fleet per split; records, statistics, health and
    // the full memory image must be byte-identical whatever the
    // (deviceJobs x engineJobs) schedule.
    struct Split
    {
        unsigned deviceJobs, engineJobs;
    };
    const Split splits[] = {{1, 1}, {2, 1}, {1, 8}, {4, 8}};

    auto runOnce = [](const Split &sp) {
        ShardedSystem sys(smallFunctionalParams(), 4);
        const std::uint64_t per =
            sys.params().bytesPerSubarray();
        Rng rng(123);
        for (unsigned d = 0; d < 4; ++d) {
            std::vector<std::uint8_t> blob(2048);
            for (auto &x : blob)
                x = std::uint8_t(rng.below(256));
            sys.device(d).write(0, blob);
        }
        FaultConfig fc;
        fc.pStep = 2e-4;
        fc.pWrite0 = 1e-3;
        fc.writeEndurance = 400.0;
        fc.seed = 77;
        sys.enableFaultInjection(fc);
        for (unsigned d = 0; d < 4; ++d)
            for (unsigned i = 0; i < 16; ++i) {
                Vpc v;
                v.kind = static_cast<VpcKind>(i % 4);
                v.size = 16;
                v.src1 = (std::uint64_t(i) * 37) % 1024;
                v.src2 = (i % 3 == 2 ? per : 0) + 1024 +
                         std::uint64_t(i) * 16;
                v.dst = 4096 + std::uint64_t(i) * 64;
                EXPECT_TRUE(sys.submit(d, v));
            }
        std::vector<std::vector<VpcExecutionRecord>> records;
        sys.processAll(records, sp.deviceJobs, sp.engineJobs);
        sys.disableFaultInjection();

        struct Snapshot
        {
            std::vector<std::uint8_t> memory;
            std::vector<FaultStatus> statuses;
            std::uint64_t pulses, deposits;
        } snap;
        for (unsigned d = 0; d < 4; ++d) {
            auto img = sys.device(d).read(0, 8192);
            snap.memory.insert(snap.memory.end(), img.begin(),
                               img.end());
            for (const VpcExecutionRecord &r : records[d])
                snap.statuses.push_back(r.fault.status);
        }
        const FaultStats stats = sys.totalFaultStats();
        snap.pulses = stats.pulses;
        snap.deposits = stats.depositPulses;
        return snap;
    };

    const auto ref = runOnce(splits[0]);
    EXPECT_GT(ref.deposits, 0u);
    ASSERT_EQ(ref.statuses.size(), 64u);
    for (std::size_t s = 1; s < 4; ++s) {
        SCOPED_TRACE(testing::Message()
                     << "deviceJobs=" << splits[s].deviceJobs
                     << " engineJobs=" << splits[s].engineJobs);
        const auto got = runOnce(splits[s]);
        EXPECT_EQ(got.memory, ref.memory);
        EXPECT_EQ(got.statuses, ref.statuses);
        EXPECT_EQ(got.pulses, ref.pulses);
        EXPECT_EQ(got.deposits, ref.deposits);
    }
}

TEST(ShardedSystem, CampaignDeviceZeroIsTheUnshardedRun)
{
    ShardedCampaignConfig cfg;
    cfg.base = faultyBase();
    cfg.devices = 4;
    const ShardedFaultCampaignResult fleet =
        runShardedFaultCampaign(cfg);
    ASSERT_EQ(fleet.devices(), 4u);
    EXPECT_TRUE(fleet.invariantHolds());
    // The fleet exercised the fault machinery.
    EXPECT_GT(fleet.stats.depositPulses, 0u);

    const FaultCampaignResult single = runFaultCampaign(cfg.base);
    expectCampaignEq(fleet.perDevice[0], single, "device 0");

    // Aggregates are the per-device sums.
    unsigned clean = 0, failed = 0;
    for (const FaultCampaignResult &dev : fleet.perDevice) {
        clean += dev.clean;
        failed += dev.failed;
    }
    EXPECT_EQ(fleet.clean, clean);
    EXPECT_EQ(fleet.failed, failed);
}

TEST(ShardedSystem, CampaignTrajectoriesInvariantUnderFleetSize)
{
    ShardedCampaignConfig small_cfg;
    small_cfg.base = faultyBase();
    small_cfg.devices = 2;
    ShardedCampaignConfig big_cfg = small_cfg;
    big_cfg.devices = 4;

    const auto small_fleet = runShardedFaultCampaign(small_cfg);
    const auto big_fleet = runShardedFaultCampaign(big_cfg);
    // Growing the fleet from 2 to 4 devices must not perturb the
    // first two devices' trajectories: seeds are pure functions of
    // (master seed, device index).
    for (unsigned d = 0; d < 2; ++d)
        expectCampaignEq(small_fleet.perDevice[d],
                         big_fleet.perDevice[d], "fleet resize");
    // The extra devices are decorrelated, not clones: their RNG
    // streams differ, so their pulse counts (continuous sampling)
    // do too.
    EXPECT_NE(big_fleet.perDevice[2].stats.pulses,
              big_fleet.perDevice[0].stats.pulses);
}

TEST(ShardedSystem, CampaignIdenticalAcrossDrainSchedules)
{
    ShardedCampaignConfig cfg;
    cfg.base = faultyBase();
    cfg.devices = 3;
    cfg.deviceJobs = 1;
    cfg.base.engineJobs = 1;
    const auto serial = runShardedFaultCampaign(cfg);

    cfg.deviceJobs = 3;
    cfg.base.engineJobs = 8;
    const auto parallel = runShardedFaultCampaign(cfg);

    for (unsigned d = 0; d < 3; ++d)
        expectCampaignEq(serial.perDevice[d],
                         parallel.perDevice[d], "drain schedule");
}

TEST(ShardedSystem, EnduranceDeviceZeroIsTheUnshardedRun)
{
    EnduranceCampaignConfig cfg;
    cfg.base.pStep = 0.0;
    cfg.base.pWrite0 = 1e-4;
    cfg.base.writeEndurance = 500.0;
    cfg.base.weibullShape = 6.0;
    cfg.rounds = 6;

    const ShardedEnduranceCampaignResult fleet =
        runShardedEnduranceCampaign(cfg, 2);
    ASSERT_EQ(fleet.devices(), 2u);
    EXPECT_TRUE(fleet.invariantHolds());

    const EnduranceCampaignResult single =
        runEnduranceCampaign(cfg);
    expectEnduranceEq(fleet.perDevice[0], single, "device 0");
    EXPECT_EQ(fleet.clean,
              fleet.perDevice[0].clean + fleet.perDevice[1].clean);

    // And the fan-out schedule does not matter either.
    const ShardedEnduranceCampaignResult serial =
        runShardedEnduranceCampaign(cfg, 2, 1);
    for (unsigned d = 0; d < 2; ++d)
        expectEnduranceEq(fleet.perDevice[d], serial.perDevice[d],
                          "endurance fan-out");
}

} // namespace streampim
