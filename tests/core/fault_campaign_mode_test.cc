/**
 * @file
 * Fault campaigns must be byte-identical across the two
 * functional-model levels: the packed fast paths (word-parallel
 * BitVec logic + word-packed bus stepping) may not perturb a single
 * RNG draw, status, or destination byte relative to the gate-netlist
 * oracle. The fallible bus pulse always takes the exact per-segment
 * sweep precisely so this holds.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/fault_campaign.hh"
#include "dwlogic/mode.hh"

namespace streampim
{
namespace
{

FaultCampaignResult
runInMode(const FaultCampaignConfig &cfg, bool strict)
{
    ScopedStrictGates mode(strict);
    return runFaultCampaign(cfg);
}

void
expectIdentical(const FaultCampaignResult &a,
                const FaultCampaignResult &b)
{
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.mismatchedRecovered, b.mismatchedRecovered);
    EXPECT_EQ(a.failedButIntact, b.failedButIntact);
    EXPECT_EQ(a.stats.pulses, b.stats.pulses);
    EXPECT_EQ(a.stats.faultsInjected, b.stats.faultsInjected);
    EXPECT_EQ(a.stats.overShifts, b.stats.overShifts);
    EXPECT_EQ(a.stats.underShifts, b.stats.underShifts);
    EXPECT_EQ(a.stats.guardChecks, b.stats.guardChecks);
    EXPECT_EQ(a.stats.checksMissed, b.stats.checksMissed);
    EXPECT_EQ(a.stats.correctionShifts, b.stats.correctionShifts);
    EXPECT_EQ(a.stats.realignRetries, b.stats.realignRetries);
    EXPECT_EQ(a.stats.uncorrectable, b.stats.uncorrectable);
    EXPECT_EQ(a.stats.budgetExhausted, b.stats.budgetExhausted);
    ASSERT_EQ(a.perVpc.size(), b.perVpc.size());
    for (std::size_t i = 0; i < a.perVpc.size(); ++i) {
        EXPECT_EQ(a.perVpc[i].status, b.perVpc[i].status)
            << "VPC " << i;
        EXPECT_EQ(a.perVpc[i].bitExact, b.perVpc[i].bitExact)
            << "VPC " << i;
        EXPECT_EQ(a.perVpc[i].resultLen, b.perVpc[i].resultLen)
            << "VPC " << i;
    }
}

TEST(FaultCampaignModes, FastAndStrictAreByteIdentical)
{
    // Operating points spanning clean runs, corrected faults, and
    // heavy escalation; each must reproduce exactly in both modes.
    struct Point
    {
        double pStep;
        double coverage;
        std::uint64_t seed;
    };
    const std::vector<Point> points = {
        {0.0, 0.999, 1},
        {1e-4, 0.999, 2},
        {1e-3, 0.90, 3},
        {1e-2, 0.90, 4},
    };
    for (const Point &pt : points) {
        FaultCampaignConfig cfg;
        cfg.pStep = pt.pStep;
        cfg.guardCoverage = pt.coverage;
        cfg.seed = pt.seed;
        auto fast = runInMode(cfg, false);
        auto strict = runInMode(cfg, true);
        expectIdentical(fast, strict);
    }
}

TEST(FaultCampaignModes, SegmentSizeSweepStaysIdentical)
{
    for (unsigned seg : {64u, 128u, 256u}) {
        FaultCampaignConfig cfg;
        cfg.busSegmentSize = seg;
        cfg.pStep = 1e-3;
        cfg.seed = 0x5eed ^ seg;
        auto fast = runInMode(cfg, false);
        auto strict = runInMode(cfg, true);
        expectIdentical(fast, strict);
    }
}

} // namespace
} // namespace streampim
