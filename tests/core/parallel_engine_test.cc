/**
 * @file
 * Byte-identity tests for the dependency-aware parallel functional
 * VPC engine: records, fault statistics, wear summaries, memory
 * images and whole campaign trajectories must be identical at any
 * job count — the engine's headline invariant (DESIGN.md §6).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "core/fault_campaign.hh"
#include "core/stream_pim.hh"
#include "parallel/thread_pool.hh"

namespace streampim
{
namespace
{

void
expectFaultInfoEq(const VpcFaultInfo &a, const VpcFaultInfo &b,
                  std::size_t i)
{
    EXPECT_EQ(a.status, b.status) << "vpc " << i;
    EXPECT_EQ(a.faultsInjected, b.faultsInjected) << "vpc " << i;
    EXPECT_EQ(a.faultsCorrected, b.faultsCorrected) << "vpc " << i;
    EXPECT_EQ(a.correctionShifts, b.correctionShifts)
        << "vpc " << i;
    EXPECT_EQ(a.realignRetries, b.realignRetries) << "vpc " << i;
    EXPECT_EQ(a.guardChecks, b.guardChecks) << "vpc " << i;
    EXPECT_EQ(a.depositPulses, b.depositPulses) << "vpc " << i;
    EXPECT_EQ(a.writeFaultsInjected, b.writeFaultsInjected)
        << "vpc " << i;
    EXPECT_EQ(a.redeposits, b.redeposits) << "vpc " << i;
    EXPECT_EQ(a.trackRemaps, b.trackRemaps) << "vpc " << i;
}

void
expectStatsEq(const FaultStats &a, const FaultStats &b)
{
    EXPECT_EQ(a.pulses, b.pulses);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.overShifts, b.overShifts);
    EXPECT_EQ(a.underShifts, b.underShifts);
    EXPECT_EQ(a.guardChecks, b.guardChecks);
    EXPECT_EQ(a.checksMissed, b.checksMissed);
    EXPECT_EQ(a.correctionShifts, b.correctionShifts);
    EXPECT_EQ(a.realignRetries, b.realignRetries);
    EXPECT_EQ(a.uncorrectable, b.uncorrectable);
    EXPECT_EQ(a.budgetExhausted, b.budgetExhausted);
    EXPECT_EQ(a.clampedAtWireEnd, b.clampedAtWireEnd);
    EXPECT_EQ(a.depositPulses, b.depositPulses);
    EXPECT_EQ(a.writeFaultsInjected, b.writeFaultsInjected);
    EXPECT_EQ(a.redeposits, b.redeposits);
    EXPECT_EQ(a.redepositExhausted, b.redepositExhausted);
    EXPECT_EQ(a.trackRemaps, b.trackRemaps);
    EXPECT_EQ(a.remapCopyBytes, b.remapCopyBytes);
    EXPECT_EQ(a.writeFailures, b.writeFailures);
}

void
expectWearEq(const std::vector<SubarrayWear> &a,
             const std::vector<SubarrayWear> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].deposits, b[i].deposits) << "subarray " << i;
        EXPECT_EQ(a[i].maxTrackWear, b[i].maxTrackWear)
            << "subarray " << i;
        EXPECT_EQ(a[i].remaps, b[i].remaps) << "subarray " << i;
        EXPECT_EQ(a[i].sparesUsed, b[i].sparesUsed)
            << "subarray " << i;
        EXPECT_EQ(a[i].sparesTotal, b[i].sparesTotal)
            << "subarray " << i;
    }
}

void
expectHealthEq(const std::vector<BankHealth> &a,
               const std::vector<BankHealth> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].bank, b[i].bank);
        EXPECT_EQ(a[i].deposits, b[i].deposits) << "bank " << i;
        EXPECT_EQ(a[i].maxWear, b[i].maxWear) << "bank " << i;
        EXPECT_EQ(a[i].trackRemaps, b[i].trackRemaps)
            << "bank " << i;
        EXPECT_EQ(a[i].sparesUsed, b[i].sparesUsed)
            << "bank " << i;
        EXPECT_EQ(a[i].sparesTotal, b[i].sparesTotal)
            << "bank " << i;
        EXPECT_EQ(a[i].redeposits, b[i].redeposits)
            << "bank " << i;
        EXPECT_EQ(a[i].writeFailures, b[i].writeFailures)
            << "bank " << i;
    }
}

/**
 * A program spanning all four subarrays of the small geometry:
 * local and remote operands, remote destinations, TRANs between
 * subarrays, and one TRAN whose source and destination ranges each
 * straddle a subarray boundary — the hardest case for the conflict
 * graph's touch masks.
 */
std::vector<Vpc>
buildProgram(std::uint64_t per)
{
    std::vector<Vpc> prog;
    for (unsigned i = 0; i < 24; ++i) {
        const unsigned sub = i % 4;
        const std::uint64_t base = per * sub;
        Vpc v;
        v.kind = static_cast<VpcKind>(i % 4);
        v.size = 16;
        v.src1 = base + (std::uint64_t(i) * 37) % 1024;
        // Every third VPC collects src2 from the next subarray.
        v.src2 = (i % 3 == 2 ? per * ((sub + 1) % 4) : base) +
                 2048 + std::uint64_t(i) * 16;
        // Every fifth VPC stores out to a remote subarray.
        v.dst = (i % 5 == 4 ? per * ((sub + 2) % 4) : base) + 4096 +
                std::uint64_t(i) * 64;
        prog.push_back(v);
    }
    // Boundary-straddling TRAN: source crosses 0->1, destination
    // crosses 2->3.
    prog.push_back({VpcKind::Tran, per - 8, 0, 3 * per - 8, 16});
    return prog;
}

struct RunResult
{
    std::vector<VpcExecutionRecord> records;
    FaultStats stats;
    std::vector<SubarrayWear> wear;
    std::vector<BankHealth> health;
    std::vector<std::uint8_t> memory;
    std::uint64_t responses = 0;
};

/** Full run with shift faults AND endurance wear enabled. */
RunResult
runOnce(unsigned jobs, unsigned rounds = 3)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();

    Rng rng(777);
    for (unsigned sub = 0; sub < 4; ++sub) {
        std::vector<std::uint8_t> blob(4096);
        for (auto &b : blob)
            b = std::uint8_t(rng.below(256));
        sys.write(per * sub, blob);
    }

    FaultConfig fc;
    fc.pStep = 2e-4;
    fc.guardCoverage = 0.9;
    fc.pWrite0 = 5e-3;
    fc.writeEndurance = 300.0;
    fc.weibullShape = 3.0;
    fc.seed = 99;
    sys.enableFaultInjection(fc);

    const auto prog = buildProgram(per);
    RunResult out;
    for (unsigned r = 0; r < rounds; ++r) {
        for (const Vpc &v : prog)
            EXPECT_TRUE(sys.submit(v));
        auto recs = sys.processQueue(jobs);
        out.records.insert(out.records.end(), recs.begin(),
                           recs.end());
    }
    sys.disableFaultInjection();

    out.stats = sys.totalFaultStats();
    out.wear = sys.wearSummaries();
    out.health = sys.bankHealth();
    out.memory = sys.read(0, sys.capacityBytes());
    out.responses = sys.responses();
    return out;
}

void
expectRunsEqual(const RunResult &a, const RunResult &b)
{
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const VpcExecutionRecord &ra = a.records[i];
        const VpcExecutionRecord &rb = b.records[i];
        EXPECT_EQ(ra.vpc.kind, rb.vpc.kind) << "vpc " << i;
        EXPECT_EQ(ra.vpc.src1, rb.vpc.src1) << "vpc " << i;
        EXPECT_EQ(ra.vpc.src2, rb.vpc.src2) << "vpc " << i;
        EXPECT_EQ(ra.vpc.dst, rb.vpc.dst) << "vpc " << i;
        EXPECT_EQ(ra.commands.size(), rb.commands.size())
            << "vpc " << i;
        EXPECT_EQ(ra.busCycles, rb.busCycles) << "vpc " << i;
        EXPECT_EQ(ra.pipelineCycles, rb.pipelineCycles)
            << "vpc " << i;
        EXPECT_EQ(ra.remoteOperands, rb.remoteOperands)
            << "vpc " << i;
        expectFaultInfoEq(ra.fault, rb.fault, i);
    }
    expectStatsEq(a.stats, b.stats);
    expectWearEq(a.wear, b.wear);
    expectHealthEq(a.health, b.health);
    EXPECT_EQ(a.memory, b.memory);
    EXPECT_EQ(a.responses, b.responses);
}

TEST(ParallelEngine, ByteIdenticalAcrossJobCounts)
{
    const RunResult serial = runOnce(1);
    // The run actually exercised the fault/wear machinery.
    EXPECT_GT(serial.stats.pulses, 0u);
    EXPECT_GT(serial.stats.depositPulses, 0u);
    for (unsigned jobs : {2u, 8u}) {
        const RunResult parallel = runOnce(jobs);
        expectRunsEqual(serial, parallel);
    }
}

TEST(ParallelEngine, RecordsComeBackInSubmitOrder)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    const auto prog = buildProgram(per);
    for (const Vpc &v : prog)
        ASSERT_TRUE(sys.submit(v));
    auto recs = sys.processQueue(8);
    ASSERT_EQ(recs.size(), prog.size());
    for (std::size_t i = 0; i < prog.size(); ++i) {
        EXPECT_EQ(recs[i].vpc.kind, prog[i].kind) << "vpc " << i;
        EXPECT_EQ(recs[i].vpc.src1, prog[i].src1) << "vpc " << i;
        EXPECT_EQ(recs[i].vpc.dst, prog[i].dst) << "vpc " << i;
    }
    EXPECT_EQ(sys.responses(), prog.size());
}

TEST(ParallelEngine, MatchesShadowSimulationAtEightJobs)
{
    // The parallel engine computes the same values a host-side
    // shadow simulation predicts (fault-free run).
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    Rng rng(4242);
    std::vector<std::uint8_t> shadow(per * 4, 0);
    for (std::uint64_t i = 0; i < 4096; ++i)
        shadow[i] = std::uint8_t(rng.below(256));
    sys.write(0, std::span<const std::uint8_t>(shadow.data(),
                                               4096));

    std::vector<Vpc> prog;
    for (unsigned i = 0; i < 12; ++i) {
        Vpc v;
        v.kind = i % 2 == 0 ? VpcKind::Add : VpcKind::Tran;
        v.size = 8;
        v.src1 = (std::uint64_t(i) * 53) % 1024;
        v.src2 = 1024 + (std::uint64_t(i) * 97) % 1024;
        // Disjoint destinations across subarrays 0..3.
        v.dst = per * (i % 4) + 8192 + (i / 4) * 64;
        prog.push_back(v);
        if (v.kind == VpcKind::Add)
            for (std::uint32_t k = 0; k < v.size; ++k)
                shadow[v.dst + k] = std::uint8_t(
                    shadow[v.src1 + k] + shadow[v.src2 + k]);
        else
            for (std::uint32_t k = 0; k < v.size; ++k)
                shadow[v.dst + k] = shadow[v.src1 + k];
    }
    for (const Vpc &v : prog)
        ASSERT_TRUE(sys.submit(v));
    sys.processQueue(8);
    // Compare everything except the last 64 bytes of each subarray
    // (the staging scratch region remote store-outs pass through,
    // which the shadow does not model).
    for (unsigned sub = 0; sub < 4; ++sub) {
        auto got = sys.read(per * sub, per - 64);
        const std::vector<std::uint8_t> want(
            shadow.begin() + long(per * sub),
            shadow.begin() + long(per * sub + per - 64));
        EXPECT_EQ(got, want) << "subarray " << sub;
    }
}

TEST(ParallelEngine, FaultCampaignIdenticalAcrossEngineJobs)
{
    FaultCampaignConfig cfg;
    cfg.pStep = 1e-3;
    cfg.guardCoverage = 0.9;
    cfg.pWrite0 = 1e-4;
    cfg.writeEndurance = 600.0;
    cfg.vpcs = 24;
    cfg.engineJobs = 1;
    const auto a = runFaultCampaign(cfg);
    EXPECT_TRUE(a.invariantHolds());
    cfg.engineJobs = 8;
    const auto b = runFaultCampaign(cfg);
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.mismatchedRecovered, b.mismatchedRecovered);
    EXPECT_EQ(a.failedButIntact, b.failedButIntact);
    expectStatsEq(a.stats, b.stats);
    ASSERT_EQ(a.perVpc.size(), b.perVpc.size());
    for (std::size_t i = 0; i < a.perVpc.size(); ++i) {
        EXPECT_EQ(a.perVpc[i].status, b.perVpc[i].status)
            << "vpc " << i;
        EXPECT_EQ(a.perVpc[i].bitExact, b.perVpc[i].bitExact)
            << "vpc " << i;
        expectFaultInfoEq(a.perVpc[i].fault, b.perVpc[i].fault, i);
    }
}

TEST(ParallelEngine, EnduranceTrajectoryIdenticalAcrossEngineJobs)
{
    EnduranceCampaignConfig cfg;
    cfg.base.pStep = 0.0;
    cfg.base.pWrite0 = 1e-3;
    cfg.base.writeEndurance = 400.0;
    cfg.base.weibullShape = 6.0;
    cfg.base.spareTracks = 2;
    cfg.rounds = 6;
    cfg.base.engineJobs = 1;
    const auto a = runEnduranceCampaign(cfg);
    EXPECT_TRUE(a.invariantHolds());
    cfg.base.engineJobs = 8;
    const auto b = runEnduranceCampaign(cfg);
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.mismatchedRecovered, b.mismatchedRecovered);
    EXPECT_EQ(a.firstFailedVpc, b.firstFailedVpc);
    EXPECT_EQ(a.firstFailedRound, b.firstFailedRound);
    EXPECT_EQ(a.firstFailedDeposits, b.firstFailedDeposits);
    expectStatsEq(a.stats, b.stats);
    expectWearEq(a.wear, b.wear);
    expectHealthEq(a.health, b.health);
    ASSERT_EQ(a.perRound.size(), b.perRound.size());
    for (std::size_t r = 0; r < a.perRound.size(); ++r) {
        EXPECT_EQ(a.perRound[r].failed, b.perRound[r].failed)
            << "round " << r;
        EXPECT_EQ(a.perRound[r].remaps, b.perRound[r].remaps)
            << "round " << r;
        EXPECT_EQ(a.perRound[r].redeposits,
                  b.perRound[r].redeposits)
            << "round " << r;
        EXPECT_EQ(a.perRound[r].depositPulses,
                  b.perRound[r].depositPulses)
            << "round " << r;
    }
}

TEST(ParallelEngine, SerialSectionForcesInlineExecution)
{
    // Inside a SerialSection, processQueue(0) must not spawn
    // workers — and still produce the same bytes.
    const RunResult reference = runOnce(1, 1);
    ThreadPool::SerialSection serial;
    const RunResult inline_run = runOnce(0, 1);
    expectRunsEqual(reference, inline_run);
}

} // namespace
} // namespace streampim
