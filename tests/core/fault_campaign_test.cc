/**
 * @file
 * End-to-end tests for the deterministic shift-fault campaign:
 * golden equivalence at p = 0, graceful degradation under heavy
 * fault rates, the non-Failed => bit-exact recovery invariant, and
 * byte-identical results regardless of sweep parallelism.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/fault_campaign.hh"
#include "parallel/sweep.hh"
#include "rm/energy.hh"

namespace streampim
{
namespace
{

TEST(FaultCampaign, ZeroPStepMatchesGoldenExactly)
{
    FaultCampaignConfig cfg;
    cfg.pStep = 0.0;
    auto res = runFaultCampaign(cfg);
    EXPECT_EQ(res.vpcs(), cfg.vpcs);
    EXPECT_EQ(res.clean, cfg.vpcs);
    EXPECT_EQ(res.corrected, 0u);
    EXPECT_EQ(res.retried, 0u);
    EXPECT_EQ(res.failed, 0u);
    EXPECT_EQ(res.stats.faultsInjected, 0u);
    for (const auto &v : res.perVpc) {
        EXPECT_EQ(v.status, FaultStatus::Clean);
        EXPECT_TRUE(v.bitExact);
    }
    EXPECT_TRUE(res.invariantHolds());
}

TEST(FaultCampaign, ModerateFaultsEveryVpcReportsAStatus)
{
    FaultCampaignConfig cfg;
    cfg.pStep = 1e-4;
    cfg.guardCoverage = 0.999;
    auto res = runFaultCampaign(cfg);
    EXPECT_EQ(res.clean + res.corrected + res.retried + res.failed,
              cfg.vpcs);
    EXPECT_GT(res.stats.faultsInjected, 0u);
    EXPECT_TRUE(res.invariantHolds());
}

TEST(FaultCampaign, RecoveredVpcsAreBitExact)
{
    // Sweep several seeds at a rate that produces a healthy mix of
    // Corrected/Retried outcomes; the invariant must hold in every
    // single run, not on average.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        FaultCampaignConfig cfg;
        cfg.pStep = 1e-3;
        cfg.guardCoverage = 0.99;
        cfg.seed = seed;
        auto res = runFaultCampaign(cfg);
        EXPECT_TRUE(res.invariantHolds())
            << "seed " << seed << ": " << res.mismatchedRecovered
            << " recovered VPC(s) mismatched golden";
        EXPECT_GT(res.corrected + res.retried + res.failed, 0u)
            << "seed " << seed;
    }
}

TEST(FaultCampaign, HeavyFaultsDegradeGracefully)
{
    // Aggressive rate + poor coverage: recoveries must still be
    // bit-exact and failures visible, and the run must complete
    // without aborting.
    FaultCampaignConfig cfg;
    cfg.pStep = 1e-2;
    cfg.guardCoverage = 0.5;
    cfg.seed = 77;
    auto res = runFaultCampaign(cfg);
    EXPECT_EQ(res.clean + res.corrected + res.retried + res.failed,
              cfg.vpcs);
    EXPECT_GT(res.failed, 0u);
    EXPECT_TRUE(res.invariantHolds());
    EXPECT_GT(res.stats.uncorrectable + res.stats.budgetExhausted,
              0u);
}

TEST(FaultCampaign, SameConfigSameResult)
{
    FaultCampaignConfig cfg;
    cfg.pStep = 1e-3;
    cfg.guardCoverage = 0.99;
    cfg.seed = 1234;
    auto a = runFaultCampaign(cfg);
    auto b = runFaultCampaign(cfg);
    ASSERT_EQ(a.vpcs(), b.vpcs());
    EXPECT_EQ(a.stats.faultsInjected, b.stats.faultsInjected);
    EXPECT_EQ(a.stats.correctionShifts, b.stats.correctionShifts);
    EXPECT_EQ(a.stats.guardChecks, b.stats.guardChecks);
    for (unsigned i = 0; i < a.vpcs(); ++i) {
        EXPECT_EQ(a.perVpc[i].status, b.perVpc[i].status) << i;
        EXPECT_EQ(a.perVpc[i].bitExact, b.perVpc[i].bitExact) << i;
    }
}

TEST(FaultCampaign, FaultInjectionChargesGuardSenseEnergy)
{
    RmParams params = smallFunctionalParams();
    params.shiftFaultPStep = 1e-3;
    StreamPimSystem sys(params);
    FaultConfig fc;
    fc.pStep = 1e-3;
    fc.seed = 5;
    sys.enableFaultInjection(fc);

    Vpc v;
    v.kind = VpcKind::Add;
    v.src1 = 0;
    v.src2 = 256;
    v.dst = 4096;
    v.size = 48;
    ASSERT_TRUE(sys.submit(v));
    auto recs = sys.processQueue();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_NE(recs[0].fault.status, FaultStatus::Failed);
    EXPECT_GT(recs[0].fault.guardChecks, 0u);

    EnergyMeter energy = sys.totalEnergy();
    EXPECT_GT(energy.count(EnergyOp::GuardSense), 0u);
    EXPECT_GT(energy.energyPj(EnergyOp::GuardSense), 0.0);
}

/** Build the same small campaign grid the bench sweeps. */
SweepRunner
campaignGrid()
{
    SweepRunner sweep("campaign_determinism");
    for (unsigned seg : {64u, 128u})
        for (double p : {1e-4, 1e-3}) {
            FaultCampaignConfig cfg;
            cfg.busSegmentSize = seg;
            cfg.pStep = p;
            cfg.vpcs = 8;
            cfg.seed = 0xC0FFEE ^ (seg * 31) ^
                       std::uint64_t(p * 1e6);
            sweep.add("seg" + std::to_string(seg),
                      "p" + std::to_string(p), [cfg] {
                          auto res = runFaultCampaign(cfg);
                          SweepCellResult cell;
                          cell.value = double(res.failed);
                          cell.metrics["clean"] = res.clean;
                          cell.metrics["corrected"] = res.corrected;
                          cell.metrics["retried"] = res.retried;
                          cell.metrics["faults_injected"] =
                              double(res.stats.faultsInjected);
                          cell.metrics["correction_shifts"] =
                              double(res.stats.correctionShifts);
                          cell.metrics["mismatched_recovered"] =
                              res.mismatchedRecovered;
                          return cell;
                      });
        }
    return sweep;
}

TEST(FaultCampaign, ResultsIdenticalAcrossSweepJobCounts)
{
    // The same grid under STREAMPIM_JOBS=1 and =4 must produce
    // byte-identical campaign results: every cell owns its systems
    // and injectors, so parallelism cannot leak into sampling.
    setenv("STREAMPIM_JOBS", "1", 1);
    SweepRunner serial = campaignGrid();
    ASSERT_EQ(serial.jobs(), 1u);
    serial.run();

    setenv("STREAMPIM_JOBS", "4", 1);
    SweepRunner parallel = campaignGrid();
    ASSERT_EQ(parallel.jobs(), 4u);
    parallel.run();
    unsetenv("STREAMPIM_JOBS");

    for (const auto &row : serial.rows())
        for (const auto &col : serial.cols()) {
            EXPECT_DOUBLE_EQ(serial.value(row, col),
                             parallel.value(row, col))
                << row << "/" << col;
            const auto &sm = serial.cell(row, col).metrics;
            const auto &pm = parallel.cell(row, col).metrics;
            ASSERT_EQ(sm.size(), pm.size());
            for (const auto &[key, val] : sm) {
                auto it = pm.find(key);
                ASSERT_NE(it, pm.end()) << key;
                EXPECT_DOUBLE_EQ(val, it->second)
                    << row << "/" << col << "/" << key;
            }
        }

    // Also byte-identical per-VPC details for one repeated cell.
    FaultCampaignConfig cfg;
    cfg.pStep = 1e-3;
    cfg.vpcs = 8;
    auto a = runFaultCampaign(cfg);
    auto b = runFaultCampaign(cfg);
    for (unsigned i = 0; i < a.vpcs(); ++i)
        EXPECT_EQ(a.perVpc[i].status, b.perVpc[i].status);
}

TEST(FaultCampaignDeath, RejectsOversizedPrograms)
{
    FaultCampaignConfig cfg;
    cfg.vpcs = 1000;
    EXPECT_DEATH(runFaultCampaign(cfg), "program size");
    cfg = FaultCampaignConfig{};
    cfg.vectorLen = 64;
    EXPECT_DEATH(runFaultCampaign(cfg), "destination slice");
}

} // namespace
} // namespace streampim
