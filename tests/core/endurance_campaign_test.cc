/**
 * @file
 * End-to-end tests for the endurance (lifetime) campaign: wear
 * accumulates across rounds on one persistent system pair, the
 * non-Failed => bit-exact invariant holds through re-deposit retries
 * and spare-track remaps, spares strictly extend lifetime, and the
 * whole campaign is byte-identical regardless of sweep parallelism.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/fault_campaign.hh"
#include "parallel/sweep.hh"

namespace streampim
{
namespace
{

/** Wear-out operating point that fails within a few dozen rounds. */
EnduranceCampaignConfig
wearOutConfig(unsigned spare_tracks, unsigned rounds = 24)
{
    EnduranceCampaignConfig cfg;
    cfg.base.pStep = 0.0; // endurance-driven failures only
    cfg.base.pWrite0 = 1e-4;
    cfg.base.writeEndurance = 500.0;
    cfg.base.weibullShape = 6.0;
    cfg.base.redepositRetryBudget = 3;
    cfg.base.remapAfterExhaustions = 1;
    cfg.base.spareTracks = spare_tracks;
    cfg.rounds = rounds;
    return cfg;
}

TEST(EnduranceCampaign, NoWriteFaultsMeansEveryRoundClean)
{
    EnduranceCampaignConfig cfg;
    cfg.base.pStep = 0.0;
    cfg.base.pWrite0 = 0.0;
    cfg.rounds = 3;
    auto res = runEnduranceCampaign(cfg);
    EXPECT_EQ(res.rounds(), 3u);
    EXPECT_EQ(res.clean, 3 * cfg.base.vpcs);
    EXPECT_EQ(res.failed, 0u);
    EXPECT_EQ(res.firstFailedVpc, -1);
    EXPECT_EQ(res.stats.writeFaultsInjected, 0u);
    EXPECT_TRUE(res.invariantHolds());
    // Wear still accumulates: deposits are physical, not sampled.
    std::uint64_t deposits = 0;
    for (const SubarrayWear &w : res.wear)
        deposits += w.deposits;
    EXPECT_GT(deposits, 0u);
}

TEST(EnduranceCampaign, WearOutFailsLateNotEarly)
{
    EnduranceCampaignConfig cfg = wearOutConfig(0);
    auto res = runEnduranceCampaign(cfg);
    ASSERT_GT(res.failed, 0u)
        << "operating point never wore out — retune the test";
    EXPECT_TRUE(res.invariantHolds());
    // Early rounds ride the p0 floor; failures need accumulated
    // wear, so the first Failed VPC cannot be in round 0.
    EXPECT_GT(res.firstFailedRound, 0);
    EXPECT_GT(res.firstFailedDeposits, 0u);
    EXPECT_GE(res.firstFailedVpc,
              long(res.firstFailedRound) * long(cfg.base.vpcs));
    // Per-round failure counts sum to the total.
    unsigned failed = 0;
    for (const EnduranceRound &r : res.perRound)
        failed += r.failed;
    EXPECT_EQ(failed, res.failed);
}

TEST(EnduranceCampaign, SparesStrictlyExtendLifetime)
{
    auto none = runEnduranceCampaign(wearOutConfig(0));
    auto spared = runEnduranceCampaign(wearOutConfig(4));
    ASSERT_GT(none.failed, 0u);
    EXPECT_TRUE(none.invariantHolds());
    EXPECT_TRUE(spared.invariantHolds());
    EXPECT_GT(spared.stats.trackRemaps, 0u);
    // The spared device either survives the whole campaign or dies
    // after strictly more committed deposit pulses.
    if (spared.firstFailedVpc >= 0) {
        EXPECT_GT(spared.firstFailedDeposits,
                  none.firstFailedDeposits);
    }
    unsigned spares_used = 0;
    for (const SubarrayWear &w : spared.wear)
        spares_used += w.sparesUsed;
    EXPECT_GT(spares_used, 0u);
}

TEST(EnduranceCampaign, RecoveredVpcsAreBitExactAcrossRemaps)
{
    // Several seeds; the invariant must hold in every run even while
    // tracks are being retired mid-program.
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        EnduranceCampaignConfig cfg = wearOutConfig(4);
        cfg.base.seed = seed;
        auto res = runEnduranceCampaign(cfg);
        EXPECT_TRUE(res.invariantHolds())
            << "seed " << seed << ": " << res.mismatchedRecovered
            << " recovered VPC(s) mismatched golden";
    }
}

TEST(EnduranceCampaign, SameConfigSameSamplePath)
{
    EnduranceCampaignConfig cfg = wearOutConfig(4, 12);
    auto a = runEnduranceCampaign(cfg);
    auto b = runEnduranceCampaign(cfg);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.firstFailedVpc, b.firstFailedVpc);
    EXPECT_EQ(a.firstFailedDeposits, b.firstFailedDeposits);
    EXPECT_EQ(a.stats.depositPulses, b.stats.depositPulses);
    EXPECT_EQ(a.stats.writeFaultsInjected,
              b.stats.writeFaultsInjected);
    EXPECT_EQ(a.stats.redeposits, b.stats.redeposits);
    EXPECT_EQ(a.stats.trackRemaps, b.stats.trackRemaps);
    EXPECT_EQ(a.stats.writeFailures, b.stats.writeFailures);
    ASSERT_EQ(a.rounds(), b.rounds());
    for (unsigned r = 0; r < a.rounds(); ++r) {
        EXPECT_EQ(a.perRound[r].failed, b.perRound[r].failed) << r;
        EXPECT_EQ(a.perRound[r].remaps, b.perRound[r].remaps) << r;
        EXPECT_EQ(a.perRound[r].depositPulses,
                  b.perRound[r].depositPulses)
            << r;
    }
    ASSERT_EQ(a.wear.size(), b.wear.size());
    for (std::size_t i = 0; i < a.wear.size(); ++i) {
        EXPECT_EQ(a.wear[i].deposits, b.wear[i].deposits) << i;
        EXPECT_EQ(a.wear[i].maxTrackWear, b.wear[i].maxTrackWear)
            << i;
        EXPECT_EQ(a.wear[i].remaps, b.wear[i].remaps) << i;
    }
}

TEST(EnduranceCampaign, RecoveryLadderRecoversStaticBaselineLosses)
{
    // The static baseline loses VPCs at this operating point; the
    // same config with the ladder enabled must save some of them,
    // and every Failed VPC must be accounted recovered-or-lost.
    EnduranceCampaignConfig base = wearOutConfig(0);
    auto baseline = runEnduranceCampaign(base);
    ASSERT_GT(baseline.failed, 0u);

    EnduranceCampaignConfig cfg = wearOutConfig(0);
    cfg.recovery.enabled = true;
    auto res = runEnduranceCampaign(cfg);
    ASSERT_GT(res.failed, 0u);
    EXPECT_TRUE(res.invariantHolds());
    EXPECT_GT(res.recovered, 0u);
    EXPECT_EQ(res.recovered + res.unrecoverable, res.failed);
    EXPECT_EQ(res.recovered, res.recoveredByRetry +
                                 res.recoveredByRehome +
                                 res.recoveredByReplan);
    EXPECT_EQ(res.recoveryStats.failedVpcs, res.failed);
    EXPECT_GT(res.recoveryStats.snapshots, 0u);
    EXPECT_GT(res.recoveryStats.snapshotBytes, 0u);
    // The ladder only engages AFTER a failure, so the trajectory up
    // to the first Failed VPC is the baseline's, bit for bit.
    EXPECT_EQ(res.firstFailedVpc, baseline.firstFailedVpc);
    EXPECT_EQ(res.firstFailedRound, baseline.firstFailedRound);
    EXPECT_EQ(res.firstFailedDeposits, baseline.firstFailedDeposits);
    // The honest lifetime metric: nothing lost => -1; otherwise the
    // first loss cannot precede the first ladder entry.
    if (res.unrecoverable == 0) {
        EXPECT_EQ(res.firstUnrecoverableVpc, -1);
        EXPECT_EQ(res.firstUnrecoverableRound, -1);
    } else {
        EXPECT_GE(res.firstUnrecoverableVpc, res.firstFailedVpc);
        EXPECT_GE(res.firstUnrecoverableDeposits,
                  res.firstFailedDeposits);
    }
    // Re-executions spend sampled pulses, tracked separately.
    EXPECT_GT(res.recoveryDeposits, 0u);
    std::uint64_t per_round_recovered = 0;
    std::uint64_t per_round_deposits = 0;
    for (const EnduranceRound &r : res.perRound) {
        per_round_recovered += r.recoveredVpcs;
        per_round_deposits += r.recoveryDeposits;
    }
    EXPECT_EQ(per_round_recovered, res.recovered);
    EXPECT_EQ(per_round_deposits, res.recoveryDeposits);
}

TEST(EnduranceCampaign, RecoveryDisabledMirrorsLegacyMetrics)
{
    // Disabled recovery must be the historical campaign bit-for-bit:
    // every Failed VPC is lost and the unrecoverable metrics mirror
    // the legacy firstFailed* ones exactly.
    auto res = runEnduranceCampaign(wearOutConfig(0));
    ASSERT_GT(res.failed, 0u);
    EXPECT_EQ(res.recovered, 0u);
    EXPECT_EQ(res.unrecoverable, res.failed);
    EXPECT_EQ(res.firstUnrecoverableVpc, res.firstFailedVpc);
    EXPECT_EQ(res.firstUnrecoverableRound, res.firstFailedRound);
    EXPECT_EQ(res.firstUnrecoverableDeposits,
              res.firstFailedDeposits);
    EXPECT_EQ(res.recoveryDeposits, 0u);
    EXPECT_EQ(res.recoveryStats.batches, 0u);
    EXPECT_EQ(res.recoveryStats.snapshots, 0u);
    EXPECT_EQ(res.recoveryStats.rollbacks, 0u);
    EXPECT_EQ(res.recoveryStats.retries, 0u);
}

TEST(EnduranceCampaign, RecoveryCampaignByteIdenticalAcrossEngineJobs)
{
    // The ladder runs serially in submit order after each round's
    // drain, so results must not depend on engine parallelism.
    EnduranceCampaignConfig cfg = wearOutConfig(0);
    cfg.recovery.enabled = true;
    EnduranceCampaignResult first;
    bool have_first = false;
    for (unsigned jobs : {1u, 2u, 8u}) {
        cfg.base.engineJobs = jobs;
        auto res = runEnduranceCampaign(cfg);
        EXPECT_TRUE(res.invariantHolds()) << "jobs " << jobs;
        if (!have_first) {
            first = res;
            have_first = true;
            ASSERT_GT(first.failed, 0u);
            continue;
        }
        EXPECT_EQ(first.failed, res.failed) << jobs;
        EXPECT_EQ(first.recovered, res.recovered) << jobs;
        EXPECT_EQ(first.recoveredByRetry, res.recoveredByRetry)
            << jobs;
        EXPECT_EQ(first.recoveredByRehome, res.recoveredByRehome)
            << jobs;
        EXPECT_EQ(first.recoveredByReplan, res.recoveredByReplan)
            << jobs;
        EXPECT_EQ(first.unrecoverable, res.unrecoverable) << jobs;
        EXPECT_EQ(first.firstUnrecoverableVpc,
                  res.firstUnrecoverableVpc)
            << jobs;
        EXPECT_EQ(first.recoveryDeposits, res.recoveryDeposits)
            << jobs;
        EXPECT_EQ(first.recoveryStats.rollbacks,
                  res.recoveryStats.rollbacks)
            << jobs;
        EXPECT_EQ(first.recoveryStats.rollbackBytes,
                  res.recoveryStats.rollbackBytes)
            << jobs;
        EXPECT_EQ(first.stats.depositPulses, res.stats.depositPulses)
            << jobs;
        EXPECT_EQ(first.stats.writeFaultsInjected,
                  res.stats.writeFaultsInjected)
            << jobs;
        EXPECT_EQ(first.stats.trackRemaps, res.stats.trackRemaps)
            << jobs;
        ASSERT_EQ(first.rounds(), res.rounds());
        for (unsigned r = 0; r < first.rounds(); ++r) {
            EXPECT_EQ(first.perRound[r].failed, res.perRound[r].failed)
                << "jobs " << jobs << " round " << r;
            EXPECT_EQ(first.perRound[r].recoveredVpcs,
                      res.perRound[r].recoveredVpcs)
                << "jobs " << jobs << " round " << r;
            EXPECT_EQ(first.perRound[r].recoveryDeposits,
                      res.perRound[r].recoveryDeposits)
                << "jobs " << jobs << " round " << r;
        }
        ASSERT_EQ(first.wear.size(), res.wear.size());
        for (std::size_t i = 0; i < first.wear.size(); ++i) {
            EXPECT_EQ(first.wear[i].deposits, res.wear[i].deposits)
                << "jobs " << jobs << " sub " << i;
            EXPECT_EQ(first.wear[i].maxTrackWear,
                      res.wear[i].maxTrackWear)
                << "jobs " << jobs << " sub " << i;
        }
    }
}

/** Small endurance grid shared by the parallelism test. */
SweepRunner
enduranceGrid()
{
    SweepRunner sweep("endurance_determinism");
    for (unsigned sp : {0u, 4u})
        for (double eta : {400.0, 600.0}) {
            EnduranceCampaignConfig cfg;
            cfg.base.pStep = 0.0;
            cfg.base.pWrite0 = 1e-4;
            cfg.base.writeEndurance = eta;
            cfg.base.weibullShape = 6.0;
            cfg.base.spareTracks = sp;
            cfg.base.vpcs = 8;
            cfg.rounds = 10;
            cfg.base.seed = 0xFACE ^ (sp * 131) ^
                            std::uint64_t(eta);
            sweep.add("sp" + std::to_string(sp),
                      "eta" + std::to_string(unsigned(eta)),
                      [cfg] {
                          auto res = runEnduranceCampaign(cfg);
                          SweepCellResult cell;
                          cell.value = double(res.firstFailedVpc);
                          cell.metrics["failed"] = res.failed;
                          cell.metrics["deposit_pulses"] =
                              double(res.stats.depositPulses);
                          cell.metrics["write_faults"] = double(
                              res.stats.writeFaultsInjected);
                          cell.metrics["redeposits"] =
                              double(res.stats.redeposits);
                          cell.metrics["remaps"] =
                              double(res.stats.trackRemaps);
                          cell.metrics["write_failures"] =
                              double(res.stats.writeFailures);
                          cell.metrics["mismatched_recovered"] =
                              res.mismatchedRecovered;
                          return cell;
                      });
        }
    return sweep;
}

TEST(EnduranceCampaign, ResultsIdenticalAcrossSweepJobCounts)
{
    // Write-fault counters included: every cell owns its persistent
    // system pair, so sweep parallelism cannot leak into the wear
    // trajectories or the sampled nucleation streams.
    setenv("STREAMPIM_JOBS", "1", 1);
    SweepRunner serial = enduranceGrid();
    ASSERT_EQ(serial.jobs(), 1u);
    serial.run();

    setenv("STREAMPIM_JOBS", "4", 1);
    SweepRunner parallel = enduranceGrid();
    ASSERT_EQ(parallel.jobs(), 4u);
    parallel.run();
    unsetenv("STREAMPIM_JOBS");

    for (const auto &row : serial.rows())
        for (const auto &col : serial.cols()) {
            EXPECT_DOUBLE_EQ(serial.value(row, col),
                             parallel.value(row, col))
                << row << "/" << col;
            const auto &sm = serial.cell(row, col).metrics;
            const auto &pm = parallel.cell(row, col).metrics;
            ASSERT_EQ(sm.size(), pm.size());
            for (const auto &[key, val] : sm) {
                auto it = pm.find(key);
                ASSERT_NE(it, pm.end()) << key;
                EXPECT_DOUBLE_EQ(val, it->second)
                    << row << "/" << col << "/" << key;
            }
        }
}

/** Adaptive (closed-loop) variant of the wear-out point. */
EnduranceCampaignConfig
adaptiveConfig(double eta = 500.0, unsigned rounds = 48)
{
    EnduranceCampaignConfig cfg = wearOutConfig(4, rounds);
    cfg.base.writeEndurance = eta;
    cfg.adaptive.enabled = true;
    cfg.adaptive.cadence = 1;
    cfg.adaptive.migrationSpareThreshold = 0;
    // Proactive wear trigger comfortably past the one-time input
    // staging wear (~512) but before the Weibull cliff (~2 x eta).
    cfg.adaptive.migrationWearThreshold =
        std::uint64_t(eta * 1.5);
    cfg.adaptive.quarantine = true;
    return cfg;
}

TEST(AdaptiveEndurance, DisabledPolicyMatchesStaticCampaign)
{
    // adaptive.enabled = false must reproduce the historical
    // open-loop sample path exactly — same failures, same wear.
    EnduranceCampaignConfig st = wearOutConfig(4, 20);
    EnduranceCampaignConfig ad = st;
    ad.adaptive.enabled = false;
    ad.adaptive.migrationWearThreshold = 123; // ignored when off
    auto a = runEnduranceCampaign(st);
    auto b = runEnduranceCampaign(ad);
    EXPECT_EQ(a.firstFailedVpc, b.firstFailedVpc);
    EXPECT_EQ(a.stats.depositPulses, b.stats.depositPulses);
    EXPECT_EQ(a.stats.writeFaultsInjected,
              b.stats.writeFaultsInjected);
    EXPECT_EQ(b.policyEvaluations, 0u);
    EXPECT_EQ(b.migrations, 0u);
    EXPECT_EQ(b.quarantinedSubarrays, 0u);
    ASSERT_EQ(b.finalHomes.size(), 2u);
    EXPECT_EQ(b.finalHomes[0], 0u);
    EXPECT_EQ(b.finalHomes[1], 1u);
}

TEST(AdaptiveEndurance, HealthTrajectoryIsRecordedPerRound)
{
    auto res = runEnduranceCampaign(wearOutConfig(4, 20));
    ASSERT_EQ(res.rounds(), 20u);
    unsigned prev_remaining = 0;
    for (unsigned r = 0; r < res.rounds(); ++r) {
        const EnduranceRound &rr = res.perRound[r];
        ASSERT_FALSE(rr.health.empty()) << r;
        EXPECT_GT(rr.sparesTotal, 0u) << r;
        EXPECT_LE(rr.remainingSpares, rr.sparesTotal) << r;
        // Spares only drain, wear only grows.
        if (r > 0) {
            EXPECT_LE(rr.remainingSpares, prev_remaining) << r;
            EXPECT_GE(rr.maxWear, res.perRound[r - 1].maxWear)
                << r;
        }
        prev_remaining = rr.remainingSpares;
    }
    // This operating point wears out: the curve must actually drop.
    EXPECT_LT(res.perRound.back().remainingSpares,
              res.perRound.front().remainingSpares);
}

TEST(AdaptiveEndurance, MigrationExtendsFirstFailure)
{
    for (double eta : {450.0, 600.0}) {
        EnduranceCampaignConfig st = adaptiveConfig(eta);
        st.adaptive.enabled = false;
        EnduranceCampaignConfig ad = adaptiveConfig(eta);
        auto s = runEnduranceCampaign(st);
        auto a = runEnduranceCampaign(ad);
        ASSERT_GT(s.failed, 0u)
            << "eta " << eta
            << ": static never wore out — retune the test";
        EXPECT_TRUE(s.invariantHolds());
        EXPECT_TRUE(a.invariantHolds());
        EXPECT_GT(a.migrations, 0u);
        EXPECT_GT(a.policyEvaluations, 0u);
        // The gate: adaptive survives strictly more useful-work
        // write volume (or the whole campaign).
        if (a.firstFailedVpc >= 0) {
            EXPECT_GT(a.firstFailedProgramDeposits,
                      s.firstFailedProgramDeposits)
                << "eta " << eta;
            EXPECT_GT(a.firstFailedRound, s.firstFailedRound)
                << "eta " << eta;
        }
        // Homes actually moved off the initial placement.
        ASSERT_EQ(a.finalHomes.size(), 2u);
        EXPECT_TRUE(a.finalHomes[0] != 0u ||
                    a.finalHomes[1] != 1u);
        // Migration accounting is self-consistent.
        std::uint64_t migr_dep = 0;
        unsigned migr = 0, migr_failed = 0, quar = 0;
        for (const EnduranceRound &r : a.perRound) {
            migr_dep += r.migrationDeposits;
            migr += r.migrations;
            migr_failed += r.migrationFailed;
            quar += r.newlyQuarantined;
        }
        EXPECT_EQ(migr, a.migrations);
        EXPECT_EQ(migr_failed, a.migrationFailed);
        EXPECT_EQ(migr_dep, a.migrationDeposits);
        EXPECT_EQ(quar, a.quarantinedSubarrays);
        EXPECT_EQ(a.migrationBytes,
                  std::uint64_t(a.migrations) * 4096u);
    }
}

TEST(AdaptiveEndurance, InvariantHoldsUnderMigrationAcrossSeeds)
{
    // The recovery invariant must survive migration + quarantine on
    // several sample paths, including ones with Failed migrations.
    for (std::uint64_t seed : {31u, 32u, 33u}) {
        EnduranceCampaignConfig cfg = adaptiveConfig(450.0);
        cfg.base.seed = seed;
        auto res = runEnduranceCampaign(cfg);
        EXPECT_TRUE(res.invariantHolds())
            << "seed " << seed << ": " << res.mismatchedRecovered
            << " recovered byte range(s) mismatched golden";
    }
}

TEST(AdaptiveEndurance, ByteIdenticalAcrossEngineJobs)
{
    EnduranceCampaignConfig cfg = adaptiveConfig(500.0, 40);
    cfg.base.engineJobs = 1;
    auto j1 = runEnduranceCampaign(cfg);
    cfg.base.engineJobs = 2;
    auto j2 = runEnduranceCampaign(cfg);
    cfg.base.engineJobs = 8;
    auto j8 = runEnduranceCampaign(cfg);
    for (const auto *j : {&j2, &j8}) {
        EXPECT_EQ(j1.firstFailedVpc, j->firstFailedVpc);
        EXPECT_EQ(j1.firstFailedProgramDeposits,
                  j->firstFailedProgramDeposits);
        EXPECT_EQ(j1.failed, j->failed);
        EXPECT_EQ(j1.migrations, j->migrations);
        EXPECT_EQ(j1.migrationFailed, j->migrationFailed);
        EXPECT_EQ(j1.migrationDeposits, j->migrationDeposits);
        EXPECT_EQ(j1.quarantinedSubarrays,
                  j->quarantinedSubarrays);
        EXPECT_EQ(j1.finalHomes, j->finalHomes);
        EXPECT_EQ(j1.stats.depositPulses, j->stats.depositPulses);
        EXPECT_EQ(j1.stats.writeFaultsInjected,
                  j->stats.writeFaultsInjected);
        EXPECT_EQ(j1.stats.redeposits, j->stats.redeposits);
        EXPECT_EQ(j1.stats.trackRemaps, j->stats.trackRemaps);
        ASSERT_EQ(j1.rounds(), j->rounds());
        for (unsigned r = 0; r < j1.rounds(); ++r) {
            EXPECT_EQ(j1.perRound[r].failed, j->perRound[r].failed)
                << r;
            EXPECT_EQ(j1.perRound[r].migrations,
                      j->perRound[r].migrations)
                << r;
            EXPECT_EQ(j1.perRound[r].remainingSpares,
                      j->perRound[r].remainingSpares)
                << r;
        }
    }
}

TEST(AdaptiveEnduranceDeath, RejectsZeroCadence)
{
    EnduranceCampaignConfig cfg = adaptiveConfig();
    cfg.adaptive.cadence = 0;
    EXPECT_DEATH(runEnduranceCampaign(cfg), "cadence");
}

TEST(EnduranceCampaignDeath, RejectsOversizedCampaigns)
{
    EnduranceCampaignConfig cfg;
    cfg.rounds = 0;
    EXPECT_DEATH(runEnduranceCampaign(cfg), "round");
    cfg = EnduranceCampaignConfig{};
    cfg.rounds = 100000;
    EXPECT_DEATH(runEnduranceCampaign(cfg), "round");
}

} // namespace
} // namespace streampim
