/**
 * @file
 * Tests for the top-level system configuration.
 */

#include <gtest/gtest.h>

#include "core/system_config.hh"

namespace streampim
{
namespace
{

TEST(SystemConfig, PaperDefaultMatchesTableIII)
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.validate();
    EXPECT_EQ(cfg.rm.banks, 32u);
    EXPECT_EQ(cfg.rm.pimBanks, 8u);
    EXPECT_EQ(cfg.rm.subarraysPerBank, 64u);
    EXPECT_EQ(cfg.rm.matsPerSubarray, 16u);
    EXPECT_EQ(cfg.rm.matBytes, 256u * 1024);
    EXPECT_DOUBLE_EQ(cfg.rm.coreFreqHz, 100e6);
    EXPECT_EQ(cfg.rm.duplicators, 2u);
    EXPECT_EQ(cfg.rm.saveTracksPerMat, 512u);
    EXPECT_EQ(cfg.rm.transferTracksPerMat, 512u);
    EXPECT_DOUBLE_EQ(cfg.rm.readNs, 3.91);
    EXPECT_DOUBLE_EQ(cfg.rm.writeNs, 10.27);
    EXPECT_DOUBLE_EQ(cfg.rm.shiftNs, 2.13);
    EXPECT_DOUBLE_EQ(cfg.rm.readPj, 3.80);
    EXPECT_DOUBLE_EQ(cfg.rm.writePj, 11.79);
    EXPECT_DOUBLE_EQ(cfg.rm.shiftPj, 3.26);
    EXPECT_DOUBLE_EQ(cfg.rm.pimAddPj, 0.03);
    EXPECT_DOUBLE_EQ(cfg.rm.pimMulPj, 0.18);
    EXPECT_EQ(cfg.busType, BusType::RmBus);
    EXPECT_EQ(cfg.optLevel, OptLevel::Unblock);
}

TEST(SystemConfig, RowBytesFromTrackCount)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.rowBytes(), 64u); // 512 tracks / 8 bits
    cfg.rm.saveTracksPerMat = 256;
    EXPECT_EQ(cfg.rowBytes(), 32u);
}

TEST(SystemConfig, HeadOfLineBlockingPerOptLevel)
{
    SystemConfig cfg;
    cfg.optLevel = OptLevel::Base;
    EXPECT_TRUE(cfg.headOfLineBlocking());
    cfg.optLevel = OptLevel::Distribute;
    EXPECT_TRUE(cfg.headOfLineBlocking());
    cfg.optLevel = OptLevel::Unblock;
    EXPECT_FALSE(cfg.headOfLineBlocking());
}

TEST(SystemConfig, OptLevelNames)
{
    EXPECT_STREQ(optLevelName(OptLevel::Base), "base");
    EXPECT_STREQ(optLevelName(OptLevel::Distribute), "distribute");
    EXPECT_STREQ(optLevelName(OptLevel::Unblock), "unblock");
}

TEST(SystemConfig, SubarraySweepConfigsValidate)
{
    // The Fig. 21 sweep reconfigures subarrays/bank and mats per
    // subarray while holding capacity; every point must validate.
    for (unsigned subarrays : {128u, 256u, 512u, 1024u}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.rm.subarraysPerBank = subarrays / cfg.rm.pimBanks;
        cfg.rm.matsPerSubarray = 16 * 64 / cfg.rm.subarraysPerBank;
        cfg.validate();
        EXPECT_EQ(cfg.rm.pimSubarrays(), subarrays);
    }
}

TEST(SystemConfig, SegmentSweepConfigsValidate)
{
    for (unsigned seg : {64u, 256u, 512u, 1024u}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.rm.busSegmentSize = seg;
        cfg.validate();
    }
}

} // namespace
} // namespace streampim
