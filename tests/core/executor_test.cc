/**
 * @file
 * Tests for the timed executor: resource semantics, dependency
 * handling, head-of-line blocking, breakdown bookkeeping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/executor.hh"
#include "runtime/schedule.hh"

namespace streampim
{
namespace
{

SystemConfig
baseConfig(OptLevel level = OptLevel::Unblock)
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.optLevel = level;
    cfg.vpcIssueTicks = 0; // keep tests focused on device timing
    return cfg;
}

VpcBatch
compute(std::uint32_t subarray, std::uint32_t count,
        std::uint32_t len, std::uint32_t dep = kNoBatch)
{
    VpcBatch b;
    b.kind = VpcKind::Mul;
    b.subarray = subarray;
    b.vpcCount = count;
    b.vectorLen = len;
    b.depA = dep;
    return b;
}

VpcBatch
tran(std::uint32_t src, std::uint32_t dst, std::uint32_t count,
     std::uint32_t len, std::uint32_t dep = kNoBatch)
{
    VpcBatch b;
    b.kind = VpcKind::Tran;
    b.subarray = src;
    b.dstSubarray = dst;
    b.vpcCount = count;
    b.vectorLen = len;
    b.depA = dep;
    return b;
}

TEST(Executor, EmptyScheduleIsInstant)
{
    Executor ex(baseConfig());
    ExecutionReport r = ex.run(VpcSchedule{});
    EXPECT_EQ(r.makespan, 0u);
    EXPECT_EQ(r.batches, 0u);
}

TEST(Executor, SingleComputeMatchesClosedForm)
{
    SystemConfig cfg = baseConfig();
    Executor ex(cfg);
    VpcSchedule s;
    s.push(compute(0, 1, 100));
    ExecutionReport r = ex.run(s);
    ProcessorTiming t(cfg.rm);
    RmBusTiming bus(cfg.rm);
    ClockDomain clk(cfg.rm.coreFreqHz);
    Tick expect = clk.cyclesToTicks(t.dotProductCycles(100) +
                                    bus.segmentCount());
    EXPECT_EQ(r.makespan, expect);
}

TEST(Executor, IndependentSubarraysOverlap)
{
    Executor ex(baseConfig());
    VpcSchedule serial;
    serial.push(compute(0, 1, 1000));
    serial.push(compute(0, 1, 1000));
    Tick two_on_one = ex.run(serial).makespan;

    VpcSchedule parallel;
    parallel.push(compute(0, 1, 1000));
    parallel.push(compute(1, 1, 1000));
    Tick on_two = ex.run(parallel).makespan;
    EXPECT_LT(on_two, two_on_one);
}

TEST(Executor, DependencySerializesAcrossSubarrays)
{
    Executor ex(baseConfig());
    VpcSchedule s;
    auto first = s.push(compute(0, 1, 500));
    s.push(compute(1, 1, 500, first));
    Tick chained = ex.run(s).makespan;

    VpcSchedule free;
    free.push(compute(0, 1, 500));
    free.push(compute(1, 1, 500));
    Tick unchained = ex.run(free).makespan;
    EXPECT_GT(chained, unchained);
}

TEST(Executor, BarrierWaitsForEverything)
{
    Executor ex(baseConfig());
    VpcSchedule s;
    s.push(compute(0, 1, 2000));
    s.push(compute(1, 1, 10));
    VpcBatch b = compute(2, 1, 10);
    b.barrier = true;
    s.push(b);
    ExecutionReport r = ex.run(s);
    // The barrier batch must start after the long batch finishes,
    // so the makespan exceeds the long batch alone.
    VpcSchedule alone;
    alone.push(compute(0, 1, 2000));
    EXPECT_GT(r.makespan, ex.run(alone).makespan);
}

TEST(Executor, TransferMovesThroughReadBusWrite)
{
    SystemConfig cfg = baseConfig();
    Executor ex(cfg);
    VpcSchedule s;
    s.push(tran(0, 1, 1, 640)); // 640 B = 10 row ops
    ExecutionReport r = ex.run(s);
    EXPECT_EQ(r.breakdown.readTicks, 10 * cfg.rm.readTicks());
    EXPECT_EQ(r.breakdown.writeTicks, 10 * cfg.rm.writeTicks());
    EXPECT_GT(r.makespan,
              r.breakdown.readTicks + r.breakdown.writeTicks);
    EXPECT_EQ(r.energy.count(EnergyOp::RmRead), 10u);
    EXPECT_EQ(r.energy.count(EnergyOp::RmWrite), 10u);
}

TEST(Executor, MigrationTransfersAreChargedSeparately)
{
    // A migration-flagged TRAN costs the same device time as a
    // regular one but lands in its own energy/time category, so
    // reports can separate policy overhead from program traffic.
    SystemConfig cfg = baseConfig();
    Executor ex(cfg);
    VpcSchedule s;
    VpcBatch mv = tran(0, 1, 1, 640); // 640 B = 10 row ops
    mv.migration = true;
    s.push(mv);
    ExecutionReport r = ex.run(s);
    EXPECT_EQ(r.breakdown.migrationTicks,
              10 * (cfg.rm.readTicks() + cfg.rm.writeTicks()));
    EXPECT_EQ(r.breakdown.readTicks, 0u);
    EXPECT_EQ(r.breakdown.writeTicks, 0u);
    EXPECT_EQ(r.energy.count(EnergyOp::Migration), 10u);
    EXPECT_EQ(r.energy.count(EnergyOp::RmRead), 0u);
    EXPECT_EQ(r.energy.count(EnergyOp::RmWrite), 0u);
    EXPECT_GT(r.energy.energyPj(EnergyOp::Migration), 0.0);

    // Identical makespan to the unflagged TRAN: the flag only
    // reroutes the accounting, never the device model.
    VpcSchedule plain;
    plain.push(tran(0, 1, 1, 640));
    ExecutionReport p = ex.run(plain);
    EXPECT_EQ(r.makespan, p.makespan);
    EXPECT_NEAR(r.energy.totalPj(), p.energy.totalPj(),
                1e-9 * p.energy.totalPj());
}

TEST(Executor, HeadOfLineBlockingSerializesBank)
{
    // Under distribute (HOL on), a collect waiting on subarray 0's
    // long compute stalls the whole bank, so an independent compute
    // on subarray 1 (same bank) is pushed back. Under unblock it
    // is not.
    auto build = [] {
        VpcSchedule s;
        auto c0 = s.push(compute(0, 1, 4000));
        s.push(tran(0, 63, 1, 1, c0)); // collect, waits for c0
        s.push(compute(1, 1, 4000));   // same bank, independent
        return s;
    };
    Executor hol(baseConfig(OptLevel::Distribute));
    Executor free(baseConfig(OptLevel::Unblock));
    Tick with_hol = hol.run(build()).makespan;
    Tick without = free.run(build()).makespan;
    EXPECT_GT(with_hol, without);
    // With HOL the two computes serialize (roughly doubling time).
    EXPECT_GT(double(with_hol) / double(without), 1.7);
}

TEST(Executor, ElectricalBusAddsConversionTime)
{
    SystemConfig rm_cfg = baseConfig();
    SystemConfig e_cfg = baseConfig();
    e_cfg.busType = BusType::Electrical;
    VpcSchedule s;
    s.push(compute(0, 1, 2000));
    Tick rm_time = Executor(rm_cfg).run(s).makespan;
    Tick e_time = Executor(e_cfg).run(s).makespan;
    EXPECT_GT(e_time, rm_time);
    EXPECT_GT(Executor(e_cfg).run(s)
                  .energy.count(EnergyOp::BusElectrical),
              0u);
}

TEST(Executor, BreakdownCoverageIdentity)
{
    Executor ex(baseConfig());
    VpcSchedule s;
    auto c = s.push(tran(0, 1, 4, 512));
    s.push(compute(1, 2, 300, c));
    s.push(tran(1, 70, 2, 1, 1));
    ExecutionReport r = ex.run(s);
    const auto &b = r.breakdown;
    // exclusive + overlapped + idle partitions the makespan.
    EXPECT_EQ(b.exclusiveTransfer + b.exclusiveProcess +
                  b.overlapped + b.idle,
              r.makespan);
}

TEST(Executor, ComputeEnergyPerKind)
{
    SystemConfig cfg = baseConfig();
    Executor ex(cfg);
    VpcSchedule s;
    VpcBatch add = compute(0, 1, 100);
    add.kind = VpcKind::Add;
    s.push(add);
    VpcBatch smul = compute(1, 1, 100);
    smul.kind = VpcKind::Smul;
    s.push(smul);
    ExecutionReport r = ex.run(s);
    EXPECT_EQ(r.energy.count(EnergyOp::PimAdd), 100u);
    EXPECT_EQ(r.energy.count(EnergyOp::PimMul), 100u);
}

TEST(Executor, VpcCountsReported)
{
    Executor ex(baseConfig());
    VpcSchedule s;
    s.push(compute(0, 7, 10));
    s.push(tran(0, 1, 3, 16));
    ExecutionReport r = ex.run(s);
    EXPECT_EQ(r.pimVpcs, 7u);
    EXPECT_EQ(r.moveVpcs, 3u);
    EXPECT_EQ(r.batches, 2u);
}

TEST(Executor, ReusableAcrossRuns)
{
    Executor ex(baseConfig());
    VpcSchedule s;
    s.push(compute(0, 1, 50));
    ExecutionReport r1 = ex.run(s);
    ExecutionReport r2 = ex.run(s);
    EXPECT_EQ(r1.makespan, r2.makespan);
    EXPECT_EQ(r1.energy.totalPj(), r2.energy.totalPj());
}

TEST(Executor, HostLinkThrottlesVpcIssue)
{
    SystemConfig cfg = baseConfig();
    cfg.vpcIssueTicks = nsToTicks(1000.0); // absurdly slow link
    Executor slow(cfg);
    VpcSchedule s;
    s.push(compute(0, 1000, 1));
    Tick slow_time = slow.run(s).makespan;
    Executor fast(baseConfig());
    Tick fast_time = fast.run(s).makespan;
    EXPECT_GT(slow_time, fast_time);
}

TEST(Executor, WriteFaultFloorChargesRedeposits)
{
    // The timed model charges the closed-form expected re-deposit
    // overhead of the write-endurance floor: deterministic (never
    // sampled), visible in both time and energy.
    SystemConfig clean_cfg = baseConfig();
    SystemConfig worn_cfg = baseConfig();
    worn_cfg.rm.writeFaultP0 = 0.01;
    Executor clean(clean_cfg);
    Executor worn(worn_cfg);

    VpcSchedule s;
    s.push(tran(0, 1, 4, 256));
    ExecutionReport a = clean.run(s);
    ExecutionReport b = worn.run(s);

    EXPECT_EQ(a.energy.count(EnergyOp::Redeposit), 0u);
    // ceil(bytes * 8 tracks * p0 / (1 - p0)) re-driven pulses.
    const double expected =
        std::ceil(4 * 256 * 8 * 0.01 / (1.0 - 0.01));
    EXPECT_EQ(b.energy.count(EnergyOp::Redeposit),
              std::uint64_t(expected));
    EXPECT_GT(b.energy.energyPj(EnergyOp::Redeposit), 0.0);
    EXPECT_GT(b.makespan, a.makespan);

    // Deterministic: the same schedule charges the same overhead.
    Executor again(worn_cfg);
    ExecutionReport c = again.run(s);
    EXPECT_EQ(c.makespan, b.makespan);
    EXPECT_EQ(c.energy.count(EnergyOp::Redeposit),
              b.energy.count(EnergyOp::Redeposit));
}

TEST(Executor, ComputeChargesRedepositsOnResultWriteback)
{
    SystemConfig clean_cfg = baseConfig();
    SystemConfig worn_cfg = baseConfig();
    worn_cfg.rm.writeFaultP0 = 0.01;
    Executor clean(clean_cfg);
    Executor worn(worn_cfg);
    VpcSchedule s;
    s.push(compute(0, 8, 100));
    ExecutionReport a = clean.run(s);
    ExecutionReport b = worn.run(s);
    EXPECT_GT(b.energy.count(EnergyOp::Redeposit), 0u);
    EXPECT_GE(b.makespan, a.makespan);
}

TEST(ExecutorDeath, OutOfRangeSubarrayPanics)
{
    SystemConfig cfg = baseConfig();
    Executor ex(cfg);
    VpcSchedule s;
    s.push(compute(cfg.rm.totalSubarrays(), 1, 10));
    EXPECT_DEATH(ex.run(s), "out of range");
}

} // namespace
} // namespace streampim
