/**
 * @file
 * Tests for the top-level functional StreamPIM device.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/stream_pim.hh"

namespace streampim
{
namespace
{

TEST(StreamPimSystem, SmallGeometryIsConsistent)
{
    StreamPimSystem sys;
    EXPECT_EQ(sys.capacityBytes(),
              sys.params().totalBytes());
    EXPECT_EQ(sys.params().totalSubarrays(), 4u);
}

TEST(StreamPimSystem, MemoryReadWriteRoundTrip)
{
    StreamPimSystem sys;
    Rng rng(8);
    std::vector<std::uint8_t> data(100);
    for (auto &v : data)
        v = std::uint8_t(rng.below(256));
    sys.write(500, data);
    EXPECT_EQ(sys.read(500, data.size()), data);
}

TEST(StreamPimSystem, WriteAcrossSubarrayBoundary)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    std::vector<std::uint8_t> data(64, 0xCD);
    sys.write(per - 32, data);
    EXPECT_EQ(sys.read(per - 32, 64), data);
}

TEST(StreamPimSystem, LocalDotProductVpc)
{
    StreamPimSystem sys;
    std::vector<std::uint8_t> a = {2, 4, 6};
    std::vector<std::uint8_t> b = {1, 3, 5};
    sys.write(0, a);
    sys.write(256, b);
    sys.submit({VpcKind::Mul, 0, 256, 512, 3});
    auto recs = sys.processQueue();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_FALSE(recs[0].remoteOperands);
    auto out = sys.read(512, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(out[i]) << (8 * i);
    EXPECT_EQ(v, 2u * 1 + 4 * 3 + 6 * 5);
}

TEST(StreamPimSystem, CrossSubarrayOperandIsCollected)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    std::vector<std::uint8_t> a = {1, 1, 1, 1};
    std::vector<std::uint8_t> b = {9, 9, 9, 9};
    sys.write(0, a);      // subarray 0
    sys.write(per, b);    // subarray 1
    sys.submit({VpcKind::Mul, 0, per, 128, 4});
    auto recs = sys.processQueue();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_TRUE(recs[0].remoteOperands);
    // The decoder reported the operand-collection command.
    bool has_read = false;
    for (const auto &cmd : recs[0].commands)
        has_read |= cmd.kind == BankCommandKind::ReadBlock;
    EXPECT_TRUE(has_read);
    auto out = sys.read(128, 4);
    EXPECT_EQ(out[0], 36u);
}

TEST(StreamPimSystem, CrossSubarrayDestination)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    std::vector<std::uint8_t> a = {3, 3};
    std::vector<std::uint8_t> b = {5, 7};
    sys.write(0, a);
    sys.write(64, b);
    sys.submit({VpcKind::Add, 0, 64, 2 * per + 100, 2});
    sys.processQueue();
    auto out = sys.read(2 * per + 100, 2);
    EXPECT_EQ(out[0], 8u);
    EXPECT_EQ(out[1], 10u);
}

TEST(StreamPimSystem, TranVpcAcrossBanks)
{
    StreamPimSystem sys;
    const std::uint64_t bank = sys.params().bytesPerBank();
    std::vector<std::uint8_t> v = {1, 2, 3, 4, 5, 6};
    sys.write(10, v);
    sys.submit({VpcKind::Tran, 10, 0, bank + 77, 6});
    sys.processQueue();
    EXPECT_EQ(sys.read(bank + 77, 6), v);
}

TEST(StreamPimSystem, QueueRespondsPerVpc)
{
    StreamPimSystem sys;
    std::vector<std::uint8_t> a = {1, 2};
    sys.write(0, a);
    sys.write(64, a);
    for (int i = 0; i < 5; ++i)
        sys.submit({VpcKind::Add, 0, 64, 128, 2});
    auto recs = sys.processQueue();
    EXPECT_EQ(recs.size(), 5u);
    EXPECT_EQ(sys.responses(), 5u);
}

TEST(StreamPimSystem, EnergyAggregatesAcrossSubarrays)
{
    StreamPimSystem sys;
    std::vector<std::uint8_t> a = {1, 2, 3};
    sys.write(0, a);
    const std::uint64_t per = sys.params().bytesPerSubarray();
    sys.write(per, a);
    EnergyMeter e = sys.totalEnergy();
    EXPECT_EQ(e.count(EnergyOp::RmWrite), 6u);
}

/** Property: random VPC programs produce host-identical memory. */
TEST(StreamPimSystem, RandomProgramMatchesHostSimulation)
{
    StreamPimSystem sys;
    Rng rng(31337);
    // Shadow memory simulated on the host.
    std::vector<std::uint8_t> shadow(1024);
    for (auto &v : shadow)
        v = std::uint8_t(rng.below(256));
    sys.write(0, shadow);

    for (int step = 0; step < 20; ++step) {
        std::uint32_t n = 1 + unsigned(rng.below(16));
        Addr s1 = rng.below(256);
        Addr s2 = 256 + rng.below(256);
        Addr d = 512 + rng.below(256);
        int kind = int(rng.below(3));
        if (kind == 0) {
            sys.submit({VpcKind::Add, s1, s2, d, n});
            for (std::uint32_t i = 0; i < n; ++i)
                shadow[d + i] =
                    std::uint8_t(shadow[s1 + i] + shadow[s2 + i]);
        } else if (kind == 1) {
            sys.submit({VpcKind::Smul, s1, s2, d, n});
            for (std::uint32_t i = 0; i < n; ++i)
                shadow[d + i] = std::uint8_t(
                    unsigned(shadow[s2]) * shadow[s1 + i]);
        } else {
            sys.submit({VpcKind::Tran, s1, 0, d, n});
            for (std::uint32_t i = 0; i < n; ++i)
                shadow[d + i] = shadow[s1 + i];
        }
        sys.processQueue();
    }
    EXPECT_EQ(sys.read(0, shadow.size()), shadow);
}

} // namespace
} // namespace streampim
