/**
 * @file
 * Tests for the top-level functional StreamPIM device.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/stream_pim.hh"

namespace streampim
{
namespace
{

TEST(StreamPimSystem, SmallGeometryIsConsistent)
{
    StreamPimSystem sys;
    EXPECT_EQ(sys.capacityBytes(),
              sys.params().totalBytes());
    EXPECT_EQ(sys.params().totalSubarrays(), 4u);
}

TEST(StreamPimSystem, MemoryReadWriteRoundTrip)
{
    StreamPimSystem sys;
    Rng rng(8);
    std::vector<std::uint8_t> data(100);
    for (auto &v : data)
        v = std::uint8_t(rng.below(256));
    sys.write(500, data);
    EXPECT_EQ(sys.read(500, data.size()), data);
}

TEST(StreamPimSystem, WriteAcrossSubarrayBoundary)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    std::vector<std::uint8_t> data(64, 0xCD);
    sys.write(per - 32, data);
    EXPECT_EQ(sys.read(per - 32, 64), data);
}

TEST(StreamPimSystem, LocalDotProductVpc)
{
    StreamPimSystem sys;
    std::vector<std::uint8_t> a = {2, 4, 6};
    std::vector<std::uint8_t> b = {1, 3, 5};
    sys.write(0, a);
    sys.write(256, b);
    sys.submit({VpcKind::Mul, 0, 256, 512, 3});
    auto recs = sys.processQueue();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_FALSE(recs[0].remoteOperands);
    auto out = sys.read(512, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(out[i]) << (8 * i);
    EXPECT_EQ(v, 2u * 1 + 4 * 3 + 6 * 5);
}

TEST(StreamPimSystem, CrossSubarrayOperandIsCollected)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    std::vector<std::uint8_t> a = {1, 1, 1, 1};
    std::vector<std::uint8_t> b = {9, 9, 9, 9};
    sys.write(0, a);      // subarray 0
    sys.write(per, b);    // subarray 1
    sys.submit({VpcKind::Mul, 0, per, 128, 4});
    auto recs = sys.processQueue();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_TRUE(recs[0].remoteOperands);
    // The decoder reported the operand-collection command.
    bool has_read = false;
    for (const auto &cmd : recs[0].commands)
        has_read |= cmd.kind == BankCommandKind::ReadBlock;
    EXPECT_TRUE(has_read);
    auto out = sys.read(128, 4);
    EXPECT_EQ(out[0], 36u);
}

TEST(StreamPimSystem, CrossSubarrayDestination)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    std::vector<std::uint8_t> a = {3, 3};
    std::vector<std::uint8_t> b = {5, 7};
    sys.write(0, a);
    sys.write(64, b);
    sys.submit({VpcKind::Add, 0, 64, 2 * per + 100, 2});
    sys.processQueue();
    auto out = sys.read(2 * per + 100, 2);
    EXPECT_EQ(out[0], 8u);
    EXPECT_EQ(out[1], 10u);
}

TEST(StreamPimSystem, TranVpcAcrossBanks)
{
    StreamPimSystem sys;
    const std::uint64_t bank = sys.params().bytesPerBank();
    std::vector<std::uint8_t> v = {1, 2, 3, 4, 5, 6};
    sys.write(10, v);
    sys.submit({VpcKind::Tran, 10, 0, bank + 77, 6});
    sys.processQueue();
    EXPECT_EQ(sys.read(bank + 77, 6), v);
}

TEST(StreamPimSystem, QueueRespondsPerVpc)
{
    StreamPimSystem sys;
    std::vector<std::uint8_t> a = {1, 2};
    sys.write(0, a);
    sys.write(64, a);
    for (int i = 0; i < 5; ++i)
        sys.submit({VpcKind::Add, 0, 64, 128, 2});
    auto recs = sys.processQueue();
    EXPECT_EQ(recs.size(), 5u);
    EXPECT_EQ(sys.responses(), 5u);
}

TEST(StreamPimSystem, EnergyAggregatesAcrossSubarrays)
{
    StreamPimSystem sys;
    std::vector<std::uint8_t> a = {1, 2, 3};
    sys.write(0, a);
    const std::uint64_t per = sys.params().bytesPerSubarray();
    sys.write(per, a);
    EnergyMeter e = sys.totalEnergy();
    EXPECT_EQ(e.count(EnergyOp::RmWrite), 6u);
}

/** Property: random VPC programs produce host-identical memory. */
TEST(StreamPimSystem, RandomProgramMatchesHostSimulation)
{
    StreamPimSystem sys;
    Rng rng(31337);
    // Shadow memory simulated on the host.
    std::vector<std::uint8_t> shadow(1024);
    for (auto &v : shadow)
        v = std::uint8_t(rng.below(256));
    sys.write(0, shadow);

    for (int step = 0; step < 20; ++step) {
        std::uint32_t n = 1 + unsigned(rng.below(16));
        Addr s1 = rng.below(256);
        Addr s2 = 256 + rng.below(256);
        Addr d = 512 + rng.below(256);
        int kind = int(rng.below(3));
        if (kind == 0) {
            sys.submit({VpcKind::Add, s1, s2, d, n});
            for (std::uint32_t i = 0; i < n; ++i)
                shadow[d + i] =
                    std::uint8_t(shadow[s1 + i] + shadow[s2 + i]);
        } else if (kind == 1) {
            sys.submit({VpcKind::Smul, s1, s2, d, n});
            for (std::uint32_t i = 0; i < n; ++i)
                shadow[d + i] = std::uint8_t(
                    unsigned(shadow[s2]) * shadow[s1 + i]);
        } else {
            sys.submit({VpcKind::Tran, s1, 0, d, n});
            for (std::uint32_t i = 0; i < n; ++i)
                shadow[d + i] = shadow[s1 + i];
        }
        sys.processQueue();
    }
    EXPECT_EQ(sys.read(0, shadow.size()), shadow);
}

TEST(StreamPimSystem, WearSummariesTrackDeposits)
{
    StreamPimSystem sys;
    auto pristine = sys.wearSummaries();
    ASSERT_EQ(pristine.size(), sys.params().totalSubarrays());
    for (const SubarrayWear &w : pristine) {
        EXPECT_EQ(w.deposits, 0u);
        EXPECT_EQ(w.remaps, 0u);
        // Spare pools are plumbed from RmParams even without any
        // injector attached.
        EXPECT_GT(w.sparesTotal, 0u);
        EXPECT_EQ(w.sparesUsed, 0u);
    }

    // Every byte written nucleates its 8 bit tracks once, injector
    // or not — wear is physical, not sampled.
    std::vector<std::uint8_t> data(10, 0xAB);
    sys.write(0, data);
    EXPECT_EQ(sys.subarrayWear(0).deposits, 10u * 8u);
    EXPECT_EQ(sys.subarrayWear(1).deposits, 0u);
}

TEST(StreamPimSystem, ResumeKeepsInjectorStreams)
{
    // disable + resume must be invisible to the sampled RNG
    // streams: a run with a fault-free readout window in the middle
    // ends with byte-identical stats to an uninterrupted run.
    FaultConfig fc;
    fc.pWrite0 = 0.3;
    fc.seed = 321;
    std::vector<std::uint8_t> data(32, 0x5C);

    StreamPimSystem paused;
    paused.enableFaultInjection(fc);
    paused.write(0, data);
    FaultStats mid = paused.totalFaultStats();
    EXPECT_GT(mid.depositPulses, 0u);
    paused.disableFaultInjection();
    EXPECT_FALSE(paused.faultInjectionActive());
    paused.read(0, data.size()); // fault-free readout window
    paused.resumeFaultInjection();
    EXPECT_TRUE(paused.faultInjectionActive());
    paused.write(1024, data);

    StreamPimSystem continuous;
    continuous.enableFaultInjection(fc);
    continuous.write(0, data);
    continuous.write(1024, data);

    FaultStats a = paused.totalFaultStats();
    FaultStats b = continuous.totalFaultStats();
    EXPECT_EQ(a.depositPulses, b.depositPulses);
    EXPECT_EQ(a.writeFaultsInjected, b.writeFaultsInjected);
    EXPECT_EQ(a.redeposits, b.redeposits);
    EXPECT_GT(a.depositPulses, mid.depositPulses);
}

TEST(StreamPimSystemDeath, DoubleEnableFaultInjectionPanics)
{
    StreamPimSystem sys;
    FaultConfig fc;
    fc.pStep = 1e-4;
    sys.enableFaultInjection(fc);
    // A second enable would silently reseed every injector
    // mid-campaign; it must be loud instead.
    EXPECT_DEATH(sys.enableFaultInjection(fc), "already enabled");
    // After an explicit disable, re-enabling (reseeding) is fine.
    sys.disableFaultInjection();
    sys.enableFaultInjection(fc);
    EXPECT_TRUE(sys.faultInjectionActive());
}

TEST(StreamPimSystemDeath, ResumeNeedsAPriorSession)
{
    StreamPimSystem sys;
    EXPECT_DEATH(sys.resumeFaultInjection(), "without a prior");
    FaultConfig fc;
    fc.pStep = 1e-4;
    sys.enableFaultInjection(fc);
    EXPECT_DEATH(sys.resumeFaultInjection(), "nothing to resume");
}

TEST(StreamPimSystemDeath, ResumeAfterResumePanics)
{
    // A full enable/disable/resume cycle re-arms injection; a second
    // resume with injection already live must be loud — callers that
    // double-resume have lost track of the campaign window.
    StreamPimSystem sys;
    FaultConfig fc;
    fc.pStep = 1e-4;
    sys.enableFaultInjection(fc);
    sys.disableFaultInjection();
    sys.resumeFaultInjection();
    EXPECT_TRUE(sys.faultInjectionActive());
    EXPECT_DEATH(sys.resumeFaultInjection(), "nothing to resume");
}

TEST(StreamPimSystemDeath, WearQueryOutOfRangePanics)
{
    StreamPimSystem sys;
    EXPECT_DEATH(sys.subarrayWear(999), "out of range");
}

TEST(StreamPimSystem, BankHealthAggregatesPerBank)
{
    StreamPimSystem sys;
    auto health = sys.bankHealth();
    ASSERT_EQ(health.size(), sys.params().banks);
    for (const BankHealth &h : health) {
        EXPECT_EQ(h.deposits, 0u);
        EXPECT_EQ(h.trackRemaps, 0u);
        EXPECT_GT(h.sparesTotal, 0u);
        EXPECT_EQ(h.remainingSpares(), h.sparesTotal);
        EXPECT_EQ(h.redeposits, 0u);
        EXPECT_EQ(h.writeFailures, 0u);
    }

    // A write into bank 0 shows up only in bank 0's telemetry.
    std::vector<std::uint8_t> data(10, 0xAB);
    sys.write(0, data);
    health = sys.bankHealth();
    EXPECT_EQ(health[0].bank, 0u);
    EXPECT_EQ(health[0].deposits, 10u * 8u);
    EXPECT_GT(health[0].maxWear, 0u);
    EXPECT_EQ(health[1].deposits, 0u);
    EXPECT_EQ(health[1].maxWear, 0u);
}

TEST(StreamPimSystem, BankHealthCarriesInjectorEnduranceCounters)
{
    StreamPimSystem sys;
    FaultConfig fc;
    fc.pWrite0 = 0.3; // nucleations fail often: redeposits happen
    fc.seed = 321;
    sys.enableFaultInjection(fc);
    std::vector<std::uint8_t> data(64, 0x5C);
    sys.write(0, data); // bank 0
    auto health = sys.bankHealth();
    EXPECT_GT(health[0].redeposits, 0u);
    EXPECT_EQ(health[1].redeposits, 0u);
    // Counters survive a disable (telemetry outlives the session).
    sys.disableFaultInjection();
    auto after = sys.bankHealth();
    EXPECT_EQ(after[0].redeposits, health[0].redeposits);
}

} // namespace
} // namespace streampim
