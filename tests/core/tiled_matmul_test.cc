/**
 * @file
 * Functional streaming tiled matmul: bit-exactness against the host
 * reference and the untiled raw-MUL formulation across shape
 * classes, byte-identity at every engine job count, the shadow-
 * simulation invariant at 8 jobs, and the fault-campaign guarantee
 * that any non-Failed recovery status keeps the result bit-exact.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "core/tiled_matmul.hh"

namespace streampim
{
namespace
{

std::vector<std::uint8_t>
randomBytes(std::uint64_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(count);
    for (auto &b : v)
        b = std::uint8_t(rng.below(256));
    return v;
}

struct Shape
{
    std::uint32_t n, k, m;
};

/**
 * The untiled formulation of the integration tests: operands
 * resident in one shot, one raw MUL per (row, column) dot product,
 * low byte of each 4-byte result. Only valid for fitting shapes.
 */
void
untiledDeviceMatmul(const std::vector<std::uint8_t> &a,
                    const std::vector<std::uint8_t> &b, Shape s,
                    std::vector<std::uint8_t> &out)
{
    StreamPimSystem sys;
    const std::uint64_t a_bytes = std::uint64_t(s.n) * s.k;
    const std::uint64_t bt_bytes = std::uint64_t(s.m) * s.k;
    ASSERT_LE(a_bytes + bt_bytes + 4 * std::uint64_t(s.n) * s.m + 64,
              sys.params().bytesPerSubarray())
        << "shape is not a fitting shape";

    sys.write(0, a);
    std::vector<std::uint8_t> bt(bt_bytes);
    for (std::uint32_t kk = 0; kk < s.k; ++kk)
        for (std::uint32_t j = 0; j < s.m; ++j)
            bt[std::uint64_t(j) * s.k + kk] =
                b[std::uint64_t(kk) * s.m + j];
    sys.write(a_bytes, bt);

    const Addr out_base = a_bytes + bt_bytes;
    std::uint64_t pending = 0;
    for (std::uint32_t r = 0; r < s.n; ++r)
        for (std::uint32_t j = 0; j < s.m; ++j) {
            const bool ok = sys.submit(
                {VpcKind::Mul, Addr(r) * s.k,
                 a_bytes + Addr(j) * s.k,
                 out_base + 4 * (Addr(r) * s.m + j), s.k});
            ASSERT_TRUE(ok);
            if (++pending == 512) {
                sys.processQueue();
                pending = 0;
            }
        }
    sys.processQueue();

    out.assign(std::uint64_t(s.n) * s.m, 0);
    const auto raw = sys.read(out_base, 4 * out.size());
    for (std::uint64_t i = 0; i < out.size(); ++i)
        out[i] = raw[4 * i]; // little-endian low byte
}

TEST(TiledMatmul, MatchesHostReferenceAcrossShapeClasses)
{
    const Shape shapes[] = {
        {24, 24, 24}, // square, remainder tiles
        {20, 12, 28}, // rectangular
        {40, 6, 5},   // tall-skinny, multiple row blocks
        {6, 48, 5},   // K-dominant, multiple k-tiles
        {1, 16, 9},   // single row
        {9, 16, 1},   // single column
        {16, 16, 16}, // exact multiple of a tile
        {32, 32, 32}, // exactly one nominal tile
    };
    for (const Shape &s : shapes) {
        const auto a = randomBytes(std::uint64_t(s.n) * s.k,
                                   1000 + s.n);
        const auto b = randomBytes(std::uint64_t(s.k) * s.m,
                                   2000 + s.m);
        StreamPimSystem sys;
        TiledMatmulStats st;
        const auto c =
            runTiledMatmul(sys, a, b, s.n, s.k, s.m, {}, &st);
        EXPECT_EQ(c, hostMatmulReference(a, b, s.n, s.k, s.m))
            << s.n << "x" << s.k << "x" << s.m;
        EXPECT_GT(st.vpcs, 0u);
        EXPECT_EQ(st.worstFault, FaultStatus::Clean);
    }
}

TEST(TiledMatmul, MatchesUntiledFormulationOnFittingShapes)
{
    const Shape shapes[] = {{16, 16, 16}, {20, 12, 28}, {24, 24, 24}};
    for (const Shape &s : shapes) {
        const auto a =
            randomBytes(std::uint64_t(s.n) * s.k, 31 + s.n);
        const auto b =
            randomBytes(std::uint64_t(s.k) * s.m, 47 + s.m);
        std::vector<std::uint8_t> untiled;
        untiledDeviceMatmul(a, b, s, untiled);
        StreamPimSystem sys;
        const auto tiled = runTiledMatmul(sys, a, b, s.n, s.k, s.m);
        EXPECT_EQ(tiled, untiled)
            << s.n << "x" << s.k << "x" << s.m;
    }
}

TEST(TiledMatmul, OutOfCoreOperandsStreamInRounds)
{
    // 64x48x40 exceeds one tile (nominal edge 32 at the small
    // geometry), forcing a multi-tile multi-round stream.
    const Shape s = {64, 48, 40};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 9);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 10);
    StreamPimSystem sys;
    TiledMatmulStats st;
    const auto c = runTiledMatmul(sys, a, b, s.n, s.k, s.m, {}, &st);
    EXPECT_EQ(c, hostMatmulReference(a, b, s.n, s.k, s.m));
    EXPECT_GT(st.tileTasks, 1u);
    EXPECT_GT(st.rounds, 1u);
}

TEST(TiledMatmul, ByteIdenticalAcrossJobCounts)
{
    const Shape s = {40, 24, 36};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 5);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 6);

    std::vector<std::uint8_t> ref_c, ref_mem;
    for (unsigned jobs : {1u, 2u, 8u}) {
        StreamPimSystem sys;
        TiledMatmulConfig cfg;
        cfg.jobs = jobs;
        const auto c = runTiledMatmul(sys, a, b, s.n, s.k, s.m, cfg);
        const auto mem = sys.read(0, sys.capacityBytes());
        if (jobs == 1) {
            ref_c = c;
            ref_mem = mem;
        } else {
            EXPECT_EQ(c, ref_c) << "jobs " << jobs;
            EXPECT_EQ(mem, ref_mem) << "jobs " << jobs;
        }
    }
}

TEST(TiledMatmul, MatchesShadowSimulationAtEightJobs)
{
    // The host-side shadow (mod-256 reference) predicts the exact
    // bytes the 8-job engine computes — the tiled analogue of
    // ParallelEngine.MatchesShadowSimulationAtEightJobs.
    const Shape s = {48, 40, 24};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 4242);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 2424);
    StreamPimSystem sys;
    TiledMatmulConfig cfg;
    cfg.jobs = 8;
    const auto c = runTiledMatmul(sys, a, b, s.n, s.k, s.m, cfg);
    EXPECT_EQ(c, hostMatmulReference(a, b, s.n, s.k, s.m));
}

TEST(TiledMatmul, DoubleBufferingDoesNotChangeResults)
{
    const Shape s = {40, 48, 20};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 11);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 12);

    StreamPimSystem dbs;
    TiledMatmulConfig db;
    db.doubleBuffer = true;
    const auto c_db = runTiledMatmul(dbs, a, b, s.n, s.k, s.m, db);

    StreamPimSystem sbs;
    TiledMatmulConfig sb;
    sb.doubleBuffer = false;
    const auto c_sb = runTiledMatmul(sbs, a, b, s.n, s.k, s.m, sb);

    EXPECT_EQ(c_db, c_sb);
    EXPECT_EQ(c_db, hostMatmulReference(a, b, s.n, s.k, s.m));
}

TEST(TiledMatmul, NonFailedFaultStatusesStayBitExact)
{
    // Under shift-fault injection with guard-based recovery, any
    // run whose worst VPC outcome is short of Failed must still be
    // bit-exact — the invariant the fault campaigns pin, here
    // carried through the full tiled dataflow.
    const Shape s = {24, 32, 20};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 77);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 78);

    StreamPimSystem sys;
    FaultConfig fc;
    fc.pStep = 2e-4;
    fc.guardCoverage = 1.0; // every fault is caught and realigned
    fc.seed = 99;
    sys.enableFaultInjection(fc);
    TiledMatmulStats st;
    const auto c = runTiledMatmul(sys, a, b, s.n, s.k, s.m, {}, &st);
    sys.disableFaultInjection();

    ASSERT_NE(st.worstFault, FaultStatus::Failed);
    EXPECT_EQ(c, hostMatmulReference(a, b, s.n, s.k, s.m));
}

/** Geometry with no remap headroom: one re-deposit exhaustion
 * escalates straight to Failed. */
RmParams
noSpareParams()
{
    RmParams p = smallFunctionalParams();
    p.spareTracksPerMat = 0;
    return p;
}

/** Pre-wears compute subarray 0 to the brink (saturated Weibull
 * hazard over the tile working set) while every other subarray
 * stays pristine: slices homed on subarray 0 come back Failed,
 * everywhere else stays healthy. */
void
preWearComputeSubZero(StreamPimSystem &sys)
{
    const auto junk = randomBytes(4096, 3);
    for (int w = 0; w < 800; ++w)
        sys.write(0, junk);
}

FaultConfig
wearOutFaults()
{
    // One full write of a 512-byte track-group window wears each of
    // its 8 bit-plane tracks by 512, so a slice deposits ~512 wear
    // per touched track per attempt. eta sits far above that (a
    // pristine subarray survives the whole run at the p0 floor) but
    // far below the pre-worn subarray's ~410k wear, whose Weibull
    // hazard is then ~1: subarray 0 fails deterministically, the
    // rest stay healthy.
    FaultConfig fc;
    fc.pStep = 0.0; // endurance-driven failures only
    fc.pWrite0 = 1e-4;
    fc.writeEndurance = 50000.0;
    fc.weibullShape = 6.0;
    fc.redepositRetryBudget = 2;
    fc.seed = 5;
    return fc;
}

TEST(TiledMatmul, RecoveryLadderSurvivesQuarantineDrivenRetile)
{
    // End-to-end ladder exercise: the first tile is homed on the
    // doomed subarray 0 and its first k-slice Fails; retry-in-place
    // fails again (wear only grows), so the runner quarantines the
    // culprit, evacuates the in-flight accumulator onto pristine
    // subarray 1, and re-tiles the remaining k-range at the derated
    // edge — after which the whole product completes bit-exact.
    const Shape s = {24, 48, 20};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 61);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 62);
    const auto want = hostMatmulReference(a, b, s.n, s.k, s.m);

    StreamPimSystem sys(noSpareParams());
    preWearComputeSubZero(sys);
    sys.enableFaultInjection(wearOutFaults());
    TiledMatmulConfig cfg;
    cfg.recovery.enabled = true;
    TiledMatmulStats st;
    const auto c = runTiledMatmul(sys, a, b, s.n, s.k, s.m, cfg, &st);
    sys.disableFaultInjection();

    ASSERT_GT(st.recovery.failedVpcs, 0u)
        << "operating point never failed — retune the test";
    EXPECT_EQ(c, want) << "recovered run must stay bit-exact";
    EXPECT_EQ(st.recovery.unrecoverable, 0u);
    EXPECT_GT(st.recovery.recovered, 0u);
    EXPECT_GE(st.recovery.retiles, 1u) << "expected an in-flight re-tile";
    EXPECT_GE(st.recovery.recoveredByRetile, 1u);
    EXPECT_GT(st.recovery.rehomes, 0u) << "accumulator evacuation";
    EXPECT_GT(st.recovery.rollbackBytes, 0u);
    EXPECT_LT(st.finalTileK, 32u) << "k-edge should have derated";
    EXPECT_EQ(st.worstFault, FaultStatus::Failed)
        << "raw fault telemetry stays honest about the transient";
}

TEST(TiledMatmul, RecoveryPathByteIdenticalAcrossJobCounts)
{
    // The ladder runs serially after each slice drains and its
    // decisions are pure functions of wear telemetry, so the whole
    // recovered run — result and full device memory — is
    // byte-identical at any engine job count.
    const Shape s = {24, 48, 20};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 61);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 62);

    std::vector<std::uint8_t> ref_c, ref_mem;
    for (unsigned jobs : {1u, 2u, 8u}) {
        StreamPimSystem sys(noSpareParams());
        preWearComputeSubZero(sys);
        sys.enableFaultInjection(wearOutFaults());
        TiledMatmulConfig cfg;
        cfg.recovery.enabled = true;
        cfg.jobs = jobs;
        TiledMatmulStats st;
        const auto c =
            runTiledMatmul(sys, a, b, s.n, s.k, s.m, cfg, &st);
        sys.disableFaultInjection();
        ASSERT_GT(st.recovery.failedVpcs, 0u);
        const auto mem = sys.read(0, sys.capacityBytes());
        if (jobs == 1) {
            ref_c = c;
            ref_mem = mem;
        } else {
            EXPECT_EQ(c, ref_c) << "jobs " << jobs;
            EXPECT_EQ(mem, ref_mem) << "jobs " << jobs;
        }
    }
}

TEST(TiledMatmul, RecoveryDisabledKeepsBulkDataflow)
{
    // The recovery knob must not perturb the default dataflow: a
    // clean system with recovery disabled produces the same stats
    // shape as before (tileTasks precomputed, finalTileK unset).
    const Shape s = {24, 24, 24};
    const auto a = randomBytes(std::uint64_t(s.n) * s.k, 91);
    const auto b = randomBytes(std::uint64_t(s.k) * s.m, 92);
    StreamPimSystem sys;
    TiledMatmulStats st;
    const auto c = runTiledMatmul(sys, a, b, s.n, s.k, s.m, {}, &st);
    EXPECT_EQ(c, hostMatmulReference(a, b, s.n, s.k, s.m));
    EXPECT_EQ(st.recovery.batches, 0u);
    EXPECT_EQ(st.recovery.failedVpcs, 0u);
    EXPECT_EQ(st.finalTileK, 0u);
}

TEST(TiledMatmulDeath, OversizeGeometryIsRejected)
{
    // The functional device (and with it the 64-bit conflict-graph
    // fast path) is capped at 64 subarrays; larger geometries must
    // be rejected up front, not mis-masked.
    RmParams p = smallFunctionalParams();
    p.subarraysPerBank = 40; // 2 banks x 40 = 80 subarrays
    EXPECT_DEATH(
        {
            StreamPimSystem dev(p);
            (void)dev;
        },
        "functional geometry too large");
}

TEST(TiledMatmulDeath, OperandsBeyondBackingStoreAreRejected)
{
    StreamPimSystem sys;
    const std::uint32_t n = 256, k = 256, m = 256; // 64 KiB each
    const auto a = randomBytes(std::uint64_t(n) * k, 1);
    const auto b = randomBytes(std::uint64_t(k) * m, 2);
    EXPECT_DEATH(runTiledMatmul(sys, a, b, n, k, m),
                 "backing subarray");
}

} // namespace
} // namespace streampim
