/**
 * @file
 * Tests for the report/stat plumbing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"
#include "runtime/planner.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

ExecutionReport
sampleReport()
{
    SystemConfig cfg = SystemConfig::paperDefault();
    Planner p(cfg);
    Executor e(cfg);
    return e.run(p.plan(makePolybench(PolybenchKernel::Atax, 64)));
}

TEST(Report, StatsCarryAllFigures)
{
    ExecutionReport r = sampleReport();
    StatGroup g("run");
    reportToStats(r, g);
    EXPECT_EQ(g.findCounter("makespan_ticks").value(), r.makespan);
    EXPECT_EQ(g.findCounter("pim_vpcs").value(), r.pimVpcs);
    EXPECT_EQ(g.findCounter("process_ticks").value(),
              r.breakdown.processTicks);
    EXPECT_TRUE(g.hasCounter("ops_pim_mul"));
}

TEST(Report, SummaryMentionsKeyNumbers)
{
    ExecutionReport r = sampleReport();
    std::string s = summarizeReport(r);
    EXPECT_NE(s.find("PIM VPCs"), std::string::npos);
    EXPECT_NE(s.find("overlapped"), std::string::npos);
}

TEST(Report, DumpIsParsable)
{
    ExecutionReport r = sampleReport();
    std::ostringstream os;
    dumpReport(r, os, "dev");
    std::string text = os.str();
    EXPECT_NE(text.find("dev.makespan_ticks "), std::string::npos);
    EXPECT_NE(text.find("dev.batches "), std::string::npos);
}

TEST(Report, CoveragePercentagesAreSane)
{
    ExecutionReport r = sampleReport();
    const auto &b = r.breakdown;
    EXPECT_LE(b.exclusiveTransfer + b.exclusiveProcess +
                  b.overlapped + b.idle,
              r.makespan);
}

} // namespace
} // namespace streampim
