/**
 * @file
 * Tests for the report/stat plumbing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/report.hh"
#include "runtime/planner.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

ExecutionReport
sampleReport()
{
    SystemConfig cfg = SystemConfig::paperDefault();
    Planner p(cfg);
    Executor e(cfg);
    return e.run(p.plan(makePolybench(PolybenchKernel::Atax, 64)));
}

TEST(Report, StatsCarryAllFigures)
{
    ExecutionReport r = sampleReport();
    StatGroup g("run");
    reportToStats(r, g);
    EXPECT_EQ(g.findCounter("makespan_ticks").value(), r.makespan);
    EXPECT_EQ(g.findCounter("pim_vpcs").value(), r.pimVpcs);
    EXPECT_EQ(g.findCounter("process_ticks").value(),
              r.breakdown.processTicks);
    EXPECT_TRUE(g.hasCounter("ops_pim_mul"));
}

TEST(Report, SummaryMentionsKeyNumbers)
{
    ExecutionReport r = sampleReport();
    std::string s = summarizeReport(r);
    EXPECT_NE(s.find("PIM VPCs"), std::string::npos);
    EXPECT_NE(s.find("overlapped"), std::string::npos);
}

TEST(Report, DumpIsParsable)
{
    ExecutionReport r = sampleReport();
    std::ostringstream os;
    dumpReport(r, os, "dev");
    std::string text = os.str();
    EXPECT_NE(text.find("dev.makespan_ticks "), std::string::npos);
    EXPECT_NE(text.find("dev.batches "), std::string::npos);
}

TEST(Report, CoveragePercentagesAreSane)
{
    ExecutionReport r = sampleReport();
    const auto &b = r.breakdown;
    EXPECT_LE(b.exclusiveTransfer + b.exclusiveProcess +
                  b.overlapped + b.idle,
              r.makespan);
}

namespace
{

std::vector<BankHealth>
sampleHealth()
{
    BankHealth b0;
    b0.bank = 0;
    b0.deposits = 1200;
    b0.maxWear = 37;
    b0.trackRemaps = 2;
    b0.sparesUsed = 2;
    b0.sparesTotal = 16;
    b0.redeposits = 9;
    b0.writeFailures = 1;
    BankHealth b1;
    b1.bank = 1;
    b1.sparesTotal = 16;
    return {b0, b1};
}

} // namespace

TEST(Report, BankHealthStatsCarryEveryCounter)
{
    StatGroup g("smart");
    auto health = sampleHealth();
    bankHealthToStats(health, g);
    EXPECT_EQ(g.findCounter("bank0_remaining_spares").value(), 14u);
    EXPECT_EQ(g.findCounter("bank0_spares_total").value(), 16u);
    EXPECT_EQ(g.findCounter("bank0_max_wear").value(), 37u);
    EXPECT_EQ(g.findCounter("bank0_deposits").value(), 1200u);
    EXPECT_EQ(g.findCounter("bank0_track_remaps").value(), 2u);
    EXPECT_EQ(g.findCounter("bank0_redeposits").value(), 9u);
    EXPECT_EQ(g.findCounter("bank0_write_failures").value(), 1u);
    EXPECT_EQ(g.findCounter("bank1_remaining_spares").value(), 16u);
    EXPECT_EQ(g.findCounter("bank1_deposits").value(), 0u);
}

TEST(Report, BankHealthSummaryIsOneLinePerBank)
{
    auto health = sampleHealth();
    const std::string s = summarizeBankHealth(health);
    EXPECT_NE(s.find("bank 0: spares 14/16 remaining"),
              std::string::npos);
    EXPECT_NE(s.find("max wear 37"), std::string::npos);
    EXPECT_NE(s.find("bank 1: spares 16/16 remaining"),
              std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 1);
}

} // namespace
} // namespace streampim
