/**
 * @file
 * Unit tests for the closed-loop HealthPolicy: evaluation cadence,
 * quarantine stickiness, migration triggers (spare threshold, wear
 * threshold, forced by quarantine), target selection (healthier
 * only, distinct, never a home or a quarantined subarray), and the
 * planner integration (re-rank + prune).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/system_config.hh"
#include "runtime/health_policy.hh"
#include "runtime/planner.hh"

namespace streampim
{
namespace
{

/** 2 banks x 2 subarrays, matching smallFunctionalParams. */
constexpr unsigned kSubs = 4;
constexpr unsigned kSubsPerBank = 2;

HealthPolicyConfig
enabledConfig()
{
    HealthPolicyConfig cfg;
    cfg.enabled = true;
    cfg.cadence = 1;
    cfg.migrationSpareThreshold = 0; // spare trigger off
    cfg.migrationWearThreshold = 0;  // wear trigger off
    cfg.quarantine = true;
    return cfg;
}

/** Pristine snapshots: both banks full spares, no wear. */
std::vector<BankHealth>
healthOf(unsigned bank0_used, unsigned bank1_used,
         unsigned total_per_bank = 32)
{
    std::vector<BankHealth> h(2);
    h[0].bank = 0;
    h[0].sparesUsed = bank0_used;
    h[0].sparesTotal = total_per_bank;
    h[1].bank = 1;
    h[1].sparesUsed = bank1_used;
    h[1].sparesTotal = total_per_bank;
    return h;
}

std::vector<SubarrayWear>
wearOf(std::vector<std::uint64_t> max_wear)
{
    std::vector<SubarrayWear> w(max_wear.size());
    for (std::size_t i = 0; i < max_wear.size(); ++i) {
        w[i].maxTrackWear = max_wear[i];
        w[i].sparesTotal = 16;
    }
    return w;
}

TEST(HealthPolicy, CadenceGatesEvaluationPoints)
{
    HealthPolicyConfig cfg = enabledConfig();
    cfg.cadence = 3;
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    // 0-based rounds: evaluate after rounds 2, 5, 8, ...
    EXPECT_FALSE(p.shouldEvaluate(0));
    EXPECT_FALSE(p.shouldEvaluate(1));
    EXPECT_TRUE(p.shouldEvaluate(2));
    EXPECT_FALSE(p.shouldEvaluate(3));
    EXPECT_TRUE(p.shouldEvaluate(5));

    HealthPolicyConfig off = cfg;
    off.enabled = false;
    HealthPolicy disabled(off, kSubs, kSubsPerBank);
    for (unsigned r = 0; r < 10; ++r)
        EXPECT_FALSE(disabled.shouldEvaluate(r)) << r;
}

TEST(HealthPolicy, NoTriggersMeansNoMigrations)
{
    HealthPolicy p(enabledConfig(), kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};
    auto d = p.evaluate(healthOf(0, 0), wearOf({100, 50, 0, 0}),
                        homes);
    EXPECT_TRUE(d.migrations.empty());
    EXPECT_TRUE(d.newlyQuarantined.empty());
    EXPECT_FALSE(d.replanned); // no planner attached
    EXPECT_EQ(p.evaluations(), 1u);
    EXPECT_EQ(p.migrationsPlanned(), 0u);
    ASSERT_EQ(d.wear.size(), kSubs);
    EXPECT_EQ(d.wear[0], 100u);
}

TEST(HealthPolicy, SpareThresholdMigratesOffDrainedBank)
{
    HealthPolicyConfig cfg = enabledConfig();
    cfg.migrationSpareThreshold = 16; // bank rem < 16 triggers
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};
    // Bank 0 has 8 spares left, bank 1 untouched: both homes (on
    // bank 0) must move to the pristine bank-1 subarrays 2 and 3.
    auto d = p.evaluate(healthOf(24, 0), wearOf({500, 400, 0, 0}),
                        homes);
    ASSERT_EQ(d.migrations.size(), 2u);
    EXPECT_EQ(d.migrations[0].operand, 0u);
    EXPECT_EQ(d.migrations[0].from, 0u);
    EXPECT_EQ(d.migrations[0].to, 2u);
    EXPECT_EQ(d.migrations[1].operand, 1u);
    EXPECT_EQ(d.migrations[1].from, 1u);
    EXPECT_EQ(d.migrations[1].to, 3u); // distinct from the first
}

TEST(HealthPolicy, WearThresholdIsTheLeadingTrigger)
{
    HealthPolicyConfig cfg = enabledConfig();
    cfg.migrationWearThreshold = 600;
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};
    // Spares are all still there (the lagging signal), but home 0's
    // worst track crossed the wear threshold.
    auto d = p.evaluate(healthOf(0, 0), wearOf({700, 100, 0, 0}),
                        homes);
    ASSERT_EQ(d.migrations.size(), 1u);
    EXPECT_EQ(d.migrations[0].from, 0u);
    // Least-worn candidate wins (2 and 3 tie at 0; lower id first).
    EXPECT_EQ(d.migrations[0].to, 2u);
}

TEST(HealthPolicy, NoHealthierCandidateMeansStayPut)
{
    HealthPolicyConfig cfg = enabledConfig();
    cfg.migrationWearThreshold = 100;
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};
    // Every subarray is equally worn past the threshold: moving
    // would not improve anything, so nothing moves (no ping-pong).
    auto d = p.evaluate(healthOf(0, 0),
                        wearOf({500, 500, 500, 500}), homes);
    EXPECT_TRUE(d.migrations.empty());
}

TEST(HealthPolicy, QuarantineIsStickyAndForcesEviction)
{
    HealthPolicyConfig cfg = enabledConfig();
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};

    auto wear = wearOf({500, 100, 900, 0});
    wear[0].exhaustedMats = 1; // home 0's hot mat is dead
    auto d = p.evaluate(healthOf(16, 0), wear, homes);
    ASSERT_EQ(d.newlyQuarantined.size(), 1u);
    EXPECT_EQ(d.newlyQuarantined[0], 0u);
    EXPECT_TRUE(p.isQuarantined(0));
    EXPECT_EQ(p.quarantinedCount(), 1u);
    // Eviction is forced even though no threshold is configured,
    // and the target is the least-worn non-quarantined non-home.
    ASSERT_EQ(d.migrations.size(), 1u);
    EXPECT_EQ(d.migrations[0].from, 0u);
    EXPECT_EQ(d.migrations[0].to, 3u); // 3 (wear 0) beats 2 (900)

    // Sticky: the next snapshot shows the mat healthy again (it
    // cannot be in reality), the subarray stays retired.
    auto d2 = p.evaluate(healthOf(16, 0), wearOf({0, 0, 0, 0}),
                         homes);
    EXPECT_TRUE(d2.newlyQuarantined.empty());
    EXPECT_TRUE(p.isQuarantined(0));
}

TEST(HealthPolicy, QuarantinedSubarraysAreNeverTargets)
{
    HealthPolicyConfig cfg = enabledConfig();
    cfg.migrationWearThreshold = 400;
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};
    auto wear = wearOf({500, 100, 0, 200});
    wear[2].exhaustedMats = 1; // the otherwise-best target is dead
    auto d = p.evaluate(healthOf(0, 0), wear, homes);
    ASSERT_EQ(d.migrations.size(), 1u);
    EXPECT_EQ(d.migrations[0].to, 3u);
}

TEST(HealthPolicy, QuarantineOffNeverRetires)
{
    HealthPolicyConfig cfg = enabledConfig();
    cfg.quarantine = false;
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};
    auto wear = wearOf({500, 100, 0, 0});
    wear[0].exhaustedMats = 4;
    auto d = p.evaluate(healthOf(32, 0), wear, homes);
    EXPECT_TRUE(d.newlyQuarantined.empty());
    EXPECT_EQ(p.quarantinedCount(), 0u);
    EXPECT_FALSE(p.isQuarantined(0));
}

TEST(HealthPolicy, AttachedPlannerIsRerankedAndPruned)
{
    SystemConfig sys;
    sys.rm = smallFunctionalParams();
    sys.optLevel = OptLevel::Distribute;
    Planner planner(sys);
    ASSERT_EQ(planner.computeSet().size(), kSubs);

    HealthPolicyConfig cfg = enabledConfig();
    HealthPolicy p(cfg, kSubs, kSubsPerBank);
    p.attachPlanner(&planner);

    const std::uint32_t homes[] = {0, 1};
    auto wear = wearOf({900, 300, 100, 0});
    wear[0].exhaustedMats = 1;
    auto d = p.evaluate(healthOf(16, 0), wear, homes);
    EXPECT_TRUE(d.replanned);
    // Subarray 0 quarantined out; survivors ranked by wear asc.
    const auto &cs = planner.computeSet();
    ASSERT_EQ(cs.size(), 3u);
    EXPECT_EQ(cs[0], 3u);
    EXPECT_EQ(cs[1], 2u);
    EXPECT_EQ(cs[2], 1u);
}

TEST(HealthPolicyDeath, RejectsBadConfigAndInputs)
{
    HealthPolicyConfig cfg = enabledConfig();
    cfg.cadence = 0;
    EXPECT_DEATH(HealthPolicy(cfg, kSubs, kSubsPerBank),
                 "cadence");

    HealthPolicy p(enabledConfig(), kSubs, kSubsPerBank);
    const std::uint32_t homes[] = {0, 1};
    // Wear snapshot for the wrong geometry.
    EXPECT_DEATH(
        p.evaluate(healthOf(0, 0), wearOf({0, 0}), homes),
        "wear snapshot");
    // A home outside the device.
    const std::uint32_t bad_homes[] = {0, 99};
    EXPECT_DEATH(p.evaluate(healthOf(0, 0),
                            wearOf({0, 0, 0, 0}), bad_homes),
                 "out of range");
}

} // namespace
} // namespace streampim
