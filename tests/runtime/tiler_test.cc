/**
 * @file
 * Tiler grid math and the planner's streaming tiled lowering.
 */

#include <gtest/gtest.h>

#include "core/executor.hh"
#include "runtime/planner.hh"
#include "runtime/tiler.hh"

namespace streampim
{
namespace
{

TEST(Tiler, TileEdgeForBudgetIsLargestFittingPowerOfTwo)
{
    // Edge T needs (2T)^2 * bpe bytes: T=256 at the 256 KiB mat
    // capacity with the timed footprint of 4 B/element.
    EXPECT_EQ(Tiler::tileEdgeForBudget(256 * 1024, 4), 256u);
    EXPECT_EQ(Tiler::tileEdgeForBudget(16 * 1024, 8), 32u);
    // Degenerate budgets still yield a usable edge.
    EXPECT_EQ(Tiler::tileEdgeForBudget(1, 4), 1u);
}

TEST(Tiler, TileEdgeBudgetBelowOneMinimalTileFloorsAtOne)
{
    // Edge 1 needs (2*1)^2 * bpe = 4*bpe bytes. Budgets strictly
    // below that cannot hold even the minimal tile, but the edge
    // floors at 1 (a usable, if oversubscribed, tile) rather than
    // returning 0 and breaking every downstream division.
    EXPECT_EQ(Tiler::tileEdgeForBudget(4 * 4 - 1, 4), 1u);
    EXPECT_EQ(Tiler::tileEdgeForBudget(0, 8), 1u);
    EXPECT_EQ(Tiler::tileEdgeForBudget(3, 1), 1u);
    // At exactly 4*bpe the minimal tile fits and doubles once.
    EXPECT_EQ(Tiler::tileEdgeForBudget(4 * 1, 1), 2u);
}

TEST(Tiler, TileEdgeDoublesAtExactCapacityThreshold)
{
    // The loop doubles while (2*edge)^2 * bpe <= budget, so a
    // budget exactly equal to the doubled edge's footprint still
    // takes the doubling — the threshold is inclusive.
    // (2*4)^2 * 8 = 512: edge 4 at 511, edge 8 at 512.
    EXPECT_EQ(Tiler::tileEdgeForBudget(511, 8), 4u);
    EXPECT_EQ(Tiler::tileEdgeForBudget(512, 8), 8u);
    // One byte past the threshold does not reach the next power.
    EXPECT_EQ(Tiler::tileEdgeForBudget(513, 8), 8u);
    // The same inclusivity at the operating point the functional
    // geometry uses (8 B/elem): doubling 16 -> 32 needs
    // (2*16)^2 * 8 = 8192 bytes, inclusively.
    EXPECT_EQ(Tiler::tileEdgeForBudget(8192 - 1, 8), 16u);
    EXPECT_EQ(Tiler::tileEdgeForBudget(8192, 8), 32u);
}

TEST(Tiler, DefaultGeometryDerivesMatSizedTiles)
{
    SystemConfig cfg;
    Tiler tiler(cfg);
    EXPECT_EQ(tiler.tileBudgetBytes(), cfg.rm.matBytes);
    EXPECT_EQ(tiler.capacityBytes(),
              2 * cfg.rm.bytesPerSubarray());

    MatmulTiling t = tiler.tile(4096, 4096, 4096);
    EXPECT_EQ(t.tileRows, 256u);
    EXPECT_EQ(t.tileK, 256u);
    EXPECT_EQ(t.tileCols, 256u);
    EXPECT_EQ(t.iTiles, 16u);
    EXPECT_EQ(t.kTiles, 16u);
    EXPECT_EQ(t.jTiles, 16u);
    EXPECT_EQ(t.tasks(), 4096u);
    EXPECT_FALSE(t.trivial());
}

TEST(Tiler, RemainderTilesCoverTheProblemExactly)
{
    SystemConfig cfg;
    TilerConfig tc;
    tc.tileRows = tc.tileCols = tc.tileK = 100;
    Tiler tiler(cfg, tc);

    MatmulTiling t = tiler.tile(250, 100, 301);
    EXPECT_EQ(t.iTiles, 3u);
    EXPECT_EQ(t.kTiles, 1u);
    EXPECT_EQ(t.jTiles, 4u);
    EXPECT_EQ(t.rowsOf(0), 100u);
    EXPECT_EQ(t.rowsOf(2), 50u);
    EXPECT_EQ(t.colsOf(3), 1u);

    std::uint64_t rows = 0;
    for (std::uint32_t i = 0; i < t.iTiles; ++i)
        rows += t.rowsOf(i);
    EXPECT_EQ(rows, 250u);
    std::uint64_t cols = 0;
    for (std::uint32_t j = 0; j < t.jTiles; ++j)
        cols += t.colsOf(j);
    EXPECT_EQ(cols, 301u);
}

TEST(Tiler, TileDimsClampToTheProblemShape)
{
    SystemConfig cfg;
    MatmulTiling t = Tiler(cfg).tile(8, 5000, 3);
    EXPECT_EQ(t.tileRows, 8u);
    EXPECT_EQ(t.tileCols, 3u);
    EXPECT_EQ(t.tileK, 256u);
    EXPECT_EQ(t.iTiles, 1u);
    EXPECT_EQ(t.jTiles, 1u);
    EXPECT_EQ(t.kTiles, (5000u + 255) / 256);
}

TEST(Tiler, NeedsTilingTriggersOnAnyOversizeOperand)
{
    SystemConfig cfg;
    Tiler tiler(cfg);
    // Paper-scale polybench shapes (dim 2000) all fit untiled.
    EXPECT_FALSE(tiler.needsTiling(2000, 2600, 2300));
    // 4096^3: every operand is 16 MiB > the 8 MiB threshold.
    EXPECT_TRUE(tiler.needsTiling(4096, 4096, 4096));
    // A single oversize operand suffices (here C = n*m).
    EXPECT_TRUE(tiler.needsTiling(4096, 2, 4096));
}

TEST(Tiler, MarkedOpsTileRegardlessOfShape)
{
    SystemConfig cfg;
    Tiler tiler(cfg);
    TaskGraph g;
    auto a = g.addMatrix("A", 8, 8);
    auto b = g.addMatrix("B", 8, 8);
    auto c = g.addMatrix("C", 8, 8);
    g.addTiledMatmul(a, b, c);
    EXPECT_TRUE(tiler.needsTiling(g, g.ops.front()));

    TaskGraph h;
    auto ha = h.addMatrix("A", 8, 8);
    auto hb = h.addMatrix("B", 8, 8);
    auto hc = h.addMatrix("C", 8, 8);
    h.addOp(MatOpKind::MatMul, ha, hb, hc);
    EXPECT_FALSE(tiler.needsTiling(h, h.ops.front()));
}

TEST(PlannerTiled, OutOfCoreMatmulPlansAndExecutes)
{
    SystemConfig cfg;
    Planner planner(cfg);
    VpcSchedule sched = planner.planTiledMatmul(4096, 4096, 4096);
    EXPECT_EQ(planner.stats().tiledMatmuls, 1u);
    EXPECT_EQ(planner.stats().tileTasks, 4096u);
    EXPECT_GT(sched.batches.size(), 0u);

    Executor exec(cfg);
    ExecutionReport rep = exec.run(sched);
    EXPECT_GT(rep.makespan, 0u);
}

TEST(PlannerTiled, DoubleBufferingBeatsSingleBuffering)
{
    SystemConfig cfg;
    Executor exec(cfg);

    Planner db(cfg);
    ExecutionReport rep_db =
        exec.run(db.planTiledMatmul(1024, 1024, 1024));

    Planner sb(cfg);
    TilerConfig tc;
    tc.doubleBuffer = false;
    sb.setTilerConfig(tc);
    ExecutionReport rep_sb =
        exec.run(sb.planTiledMatmul(1024, 1024, 1024));

    EXPECT_LT(rep_db.makespan, rep_sb.makespan);

    // Overlap ratio: staged transfers hide under compute when
    // double-buffered.
    auto overlap = [](const ExecutionReport &r) {
        const double ex = double(r.breakdown.exclusiveTransfer);
        const double ov = double(r.breakdown.overlapped);
        return ov / (ov + ex);
    };
    EXPECT_GT(overlap(rep_db), overlap(rep_sb));
}

TEST(PlannerTiled, PlanRoutesOversizeMatmulsAutomatically)
{
    SystemConfig cfg;
    Planner planner(cfg);

    TaskGraph big;
    auto a = big.addMatrix("A", 4096, 4096);
    auto b = big.addMatrix("B", 4096, 4096);
    auto c = big.addMatrix("C", 4096, 4096);
    big.addOp(MatOpKind::MatMul, a, b, c); // not marked tiled
    planner.plan(big);
    EXPECT_EQ(planner.stats().tiledMatmuls, 1u);
    EXPECT_GT(planner.stats().tileTasks, 1u);
}

TEST(PlannerTiled, PaperDimKernelsStayUntiled)
{
    // The Table IV counts pin the untiled plans at dim 2000; the
    // tiler must not capture them.
    SystemConfig cfg;
    Planner planner(cfg);
    TaskGraph g;
    auto a = g.addMatrix("A", 2000, 2600);
    auto b = g.addMatrix("B", 2600, 2300);
    auto c = g.addMatrix("C", 2000, 2300);
    g.addOp(MatOpKind::MatMul, a, b, c);
    planner.plan(g);
    EXPECT_EQ(planner.stats().tiledMatmuls, 0u);
    EXPECT_EQ(planner.stats().tileTasks, 0u);
}

TEST(PlannerTiled, SchedulesAreDeterministic)
{
    SystemConfig cfg;
    Planner planner(cfg);
    VpcSchedule s1 = planner.planTiledMatmul(777, 513, 1030);
    VpcSchedule s2 = planner.planTiledMatmul(777, 513, 1030);
    ASSERT_EQ(s1.batches.size(), s2.batches.size());
    for (std::size_t i = 0; i < s1.batches.size(); ++i) {
        const VpcBatch &x = s1.batches[i];
        const VpcBatch &y = s2.batches[i];
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.subarray, y.subarray);
        EXPECT_EQ(x.dstSubarray, y.dstSubarray);
        EXPECT_EQ(x.vpcCount, y.vpcCount);
        EXPECT_EQ(x.vectorLen, y.vectorLen);
        EXPECT_EQ(x.depA, y.depA);
        EXPECT_EQ(x.depB, y.depB);
    }
}

} // namespace
} // namespace streampim
