/**
 * @file
 * Tests for VPC trace serialization.
 */

#include <gtest/gtest.h>

#include "core/executor.hh"
#include "runtime/planner.hh"
#include "runtime/trace.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

VpcTrace
sampleTrace()
{
    SystemConfig cfg = SystemConfig::paperDefault();
    Planner p(cfg);
    VpcTrace t;
    t.workload = "atax";
    t.schedule = p.plan(makePolybench(PolybenchKernel::Atax, 48));
    return t;
}

TEST(Trace, RoundTripPreservesEveryBatch)
{
    VpcTrace t = sampleTrace();
    VpcTrace back = traceFromString(traceToString(t));
    EXPECT_EQ(back.workload, "atax");
    ASSERT_EQ(back.schedule.batches.size(),
              t.schedule.batches.size());
    for (std::size_t i = 0; i < t.schedule.batches.size(); ++i) {
        const auto &a = t.schedule.batches[i];
        const auto &b = back.schedule.batches[i];
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.subarray, b.subarray) << i;
        EXPECT_EQ(a.dstSubarray, b.dstSubarray) << i;
        EXPECT_EQ(a.vpcCount, b.vpcCount) << i;
        EXPECT_EQ(a.vectorLen, b.vectorLen) << i;
        EXPECT_EQ(a.depA, b.depA) << i;
        EXPECT_EQ(a.depB, b.depB) << i;
        EXPECT_EQ(a.barrier, b.barrier) << i;
    }
}

TEST(Trace, ReplayedTraceProducesIdenticalTiming)
{
    VpcTrace t = sampleTrace();
    SystemConfig cfg = SystemConfig::paperDefault();
    Executor ex(cfg);
    Tick direct = ex.run(t.schedule).makespan;
    VpcTrace loaded = traceFromString(traceToString(t));
    Tick replayed = ex.run(loaded.schedule).makespan;
    EXPECT_EQ(direct, replayed);
}

TEST(Trace, FileRoundTrip)
{
    VpcTrace t = sampleTrace();
    const std::string path = "/tmp/streampim_trace_test.stpim";
    saveTraceFile(t, path);
    VpcTrace loaded = loadTraceFile(path);
    EXPECT_EQ(loaded.schedule.batches.size(),
              t.schedule.batches.size());
    EXPECT_EQ(loaded.schedule.pimVpcs(), t.schedule.pimVpcs());
}

TEST(Trace, CommentsAndBlankLinesIgnored)
{
    VpcTrace t;
    t.workload = "demo";
    VpcBatch b;
    b.kind = VpcKind::Mul;
    b.subarray = 3;
    b.vpcCount = 2;
    b.vectorLen = 7;
    t.schedule.push(b);
    std::string text = traceToString(t);
    text = "# a comment\n\n" + text + "# trailing\n";
    VpcTrace back = traceFromString(text);
    ASSERT_EQ(back.schedule.batches.size(), 1u);
    EXPECT_EQ(back.schedule.batches[0].vectorLen, 7u);
}

TEST(TraceDeath, RejectsBadHeader)
{
    EXPECT_DEATH(traceFromString("NOTATRACE 1\n"), "STPIMTRACE");
    EXPECT_DEATH(traceFromString(""), "empty trace");
}

TEST(TraceDeath, RejectsForwardDependencies)
{
    std::string text =
        "STPIMTRACE 1\nworkload x\nbatches 1\n"
        "B MUL 0 0 1 4 7 - 0\n"; // dep 7 does not exist
    EXPECT_DEATH(traceFromString(text), "forward");
}

TEST(TraceDeath, RejectsCountMismatch)
{
    std::string text =
        "STPIMTRACE 1\nworkload x\nbatches 2\n"
        "B MUL 0 0 1 4 - - 0\n";
    EXPECT_DEATH(traceFromString(text), "declares");
}

TEST(TraceDeath, RejectsUnknownMnemonic)
{
    std::string text =
        "STPIMTRACE 1\nworkload x\nbatches 1\n"
        "B FROB 0 0 1 4 - - 0\n";
    EXPECT_DEATH(traceFromString(text), "mnemonic");
}

} // namespace
} // namespace streampim
