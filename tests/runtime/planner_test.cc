/**
 * @file
 * Tests for the planner: placement sets, schedule well-formedness,
 * VPC counts and the semantics of the three optimization levels.
 */

#include <gtest/gtest.h>

#include <set>

#include "runtime/planner.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

SystemConfig
cfgWith(OptLevel level)
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.optLevel = level;
    return cfg;
}

TaskGraph
tinyMatVec(unsigned rows = 64, unsigned cols = 48)
{
    TaskGraph g;
    g.name = "mv";
    auto a = g.addMatrix("A", rows, cols);
    auto x = g.addMatrix("x", cols, 1);
    auto y = g.addMatrix("y", rows, 1);
    g.addOp(MatOpKind::MatVec, a, x, y);
    return g;
}

/** Every dependency must point to an earlier batch. */
void
checkWellFormed(const VpcSchedule &s, const SystemConfig &cfg)
{
    for (std::size_t i = 0; i < s.batches.size(); ++i) {
        const VpcBatch &b = s.batches[i];
        if (b.depA != kNoBatch) {
            EXPECT_LT(b.depA, i);
        }
        if (b.depB != kNoBatch) {
            EXPECT_LT(b.depB, i);
        }
        EXPECT_LT(b.subarray, cfg.rm.totalSubarrays());
        if (b.kind == VpcKind::Tran) {
            EXPECT_LT(b.dstSubarray, cfg.rm.totalSubarrays());
        }
        EXPECT_GT(b.vpcCount, 0u);
        EXPECT_GT(b.vectorLen, 0u);
    }
}

TEST(Planner, BaseUsesOneSubarray)
{
    SystemConfig cfg = cfgWith(OptLevel::Base);
    Planner p(cfg);
    EXPECT_EQ(p.computeSet().size(), 1u);
    VpcSchedule s = p.plan(tinyMatVec());
    checkWellFormed(s, cfg);
    for (const auto &b : s.batches) {
        if (isPimVpc(b.kind)) {
            EXPECT_EQ(b.subarray, p.computeSet()[0]);
        }
    }
}

TEST(Planner, DistributeUsesAllPimSubarrays)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    EXPECT_EQ(p.computeSet().size(), cfg.rm.pimSubarrays());
    // Staging overlaps the compute set (the distribute flaw).
    EXPECT_EQ(p.stagingSet().size(), 1u);
    EXPECT_EQ(p.stagingSet()[0], p.computeSet()[0]);
}

TEST(Planner, UnblockStagingIsDisjointFromCompute)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    std::set<std::uint32_t> compute(p.computeSet().begin(),
                                    p.computeSet().end());
    for (auto s : p.stagingSet())
        EXPECT_EQ(compute.count(s), 0u)
            << "staging subarray " << s << " inside compute set";
}

TEST(Planner, PimVpcCountForMatVec)
{
    // One MUL VPC per output row regardless of opt level.
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = cfgWith(level);
        Planner p(cfg);
        VpcSchedule s = p.plan(tinyMatVec(100, 40));
        EXPECT_EQ(s.pimVpcs(), 100u) << optLevelName(level);
        checkWellFormed(s, cfg);
    }
}

TEST(Planner, MatMulCountsOneDotPerOutput)
{
    TaskGraph g;
    auto a = g.addMatrix("A", 30, 20);
    auto b = g.addMatrix("B", 20, 25);
    auto c = g.addMatrix("C", 30, 25);
    g.addOp(MatOpKind::MatMul, a, b, c);
    Planner p(cfgWith(OptLevel::Unblock));
    VpcSchedule s = p.plan(g);
    EXPECT_EQ(s.pimVpcs(), 30u * 25u);
}

TEST(Planner, ComputeBatchesDependOnTheirCopies)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec());
    for (const auto &b : s.batches) {
        if (b.kind != VpcKind::Mul)
            continue;
        ASSERT_NE(b.depA, kNoBatch);
        const VpcBatch &dep = s.batches[b.depA];
        EXPECT_EQ(dep.kind, VpcKind::Tran);
        EXPECT_EQ(dep.dstSubarray, b.subarray);
    }
}

TEST(Planner, DistributePairsComputeWithCollect)
{
    // The naive order: every MUL batch is immediately followed by
    // the TRAN collecting its results (the head-of-line trigger).
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec(512, 64));
    for (std::size_t i = 0; i < s.batches.size(); ++i) {
        if (s.batches[i].kind != VpcKind::Mul)
            continue;
        ASSERT_LT(i + 1, s.batches.size());
        const VpcBatch &next = s.batches[i + 1];
        EXPECT_EQ(next.kind, VpcKind::Tran);
        EXPECT_EQ(next.depA, std::uint32_t(i));
        EXPECT_EQ(next.subarray, s.batches[i].subarray);
    }
}

TEST(Planner, UnblockSeparatesComputeAndCollectPhases)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec(512, 64));
    // Under unblock, no MUL batch is immediately followed by its
    // own collect.
    for (std::size_t i = 0; i + 1 < s.batches.size(); ++i) {
        if (s.batches[i].kind != VpcKind::Mul)
            continue;
        const VpcBatch &next = s.batches[i + 1];
        if (next.kind == VpcKind::Tran) {
            EXPECT_NE(next.depA, std::uint32_t(i));
        }
    }
}

TEST(Planner, SlicingSplitsOversizedVectors)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    cfg.maxVpcElements = 16;
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec(4, 50)); // 50 > 16
    EXPECT_GT(p.stats().slicedVpcs, 0u);
    for (const auto &b : s.batches) {
        if (isPimVpc(b.kind)) {
            EXPECT_LE(b.vectorLen, 16u);
        }
    }
    checkWellFormed(s, cfg);
}

TEST(Planner, StatsMatchScheduleCounters)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    TaskGraph g = makePolybench(PolybenchKernel::Atax, 64);
    VpcSchedule s = p.plan(g);
    EXPECT_EQ(p.stats().pimVpcs, s.pimVpcs());
    EXPECT_EQ(p.stats().moveVpcs, s.moveVpcs());
    EXPECT_EQ(p.stats().batches, s.batches.size());
}

TEST(Planner, EveryPolybenchKernelLowersCleanly)
{
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = cfgWith(level);
        Planner p(cfg);
        for (PolybenchKernel k : allPolybenchKernels()) {
            TaskGraph g = makePolybench(k, 32);
            VpcSchedule s = p.plan(g);
            EXPECT_GT(s.pimVpcs(), 0u) << polybenchName(k);
            checkWellFormed(s, cfg);
        }
    }
}

TEST(ScheduleDeath, ForwardDependencyPanics)
{
    VpcSchedule s;
    VpcBatch b;
    b.kind = VpcKind::Mul;
    b.vectorLen = 1;
    b.depA = 5; // no such batch yet
    EXPECT_DEATH(s.push(b), "future");
}

} // namespace
} // namespace streampim
