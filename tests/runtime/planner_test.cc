/**
 * @file
 * Tests for the planner: placement sets, schedule well-formedness,
 * VPC counts and the semantics of the three optimization levels.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/executor.hh"
#include "runtime/planner.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

SystemConfig
cfgWith(OptLevel level)
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.optLevel = level;
    return cfg;
}

TaskGraph
tinyMatVec(unsigned rows = 64, unsigned cols = 48)
{
    TaskGraph g;
    g.name = "mv";
    auto a = g.addMatrix("A", rows, cols);
    auto x = g.addMatrix("x", cols, 1);
    auto y = g.addMatrix("y", rows, 1);
    g.addOp(MatOpKind::MatVec, a, x, y);
    return g;
}

/** Every dependency must point to an earlier batch. */
void
checkWellFormed(const VpcSchedule &s, const SystemConfig &cfg)
{
    for (std::size_t i = 0; i < s.batches.size(); ++i) {
        const VpcBatch &b = s.batches[i];
        if (b.depA != kNoBatch) {
            EXPECT_LT(b.depA, i);
        }
        if (b.depB != kNoBatch) {
            EXPECT_LT(b.depB, i);
        }
        EXPECT_LT(b.subarray, cfg.rm.totalSubarrays());
        if (b.kind == VpcKind::Tran) {
            EXPECT_LT(b.dstSubarray, cfg.rm.totalSubarrays());
        }
        EXPECT_GT(b.vpcCount, 0u);
        EXPECT_GT(b.vectorLen, 0u);
    }
}

TEST(Planner, BaseUsesOneSubarray)
{
    SystemConfig cfg = cfgWith(OptLevel::Base);
    Planner p(cfg);
    EXPECT_EQ(p.computeSet().size(), 1u);
    VpcSchedule s = p.plan(tinyMatVec());
    checkWellFormed(s, cfg);
    for (const auto &b : s.batches) {
        if (isPimVpc(b.kind)) {
            EXPECT_EQ(b.subarray, p.computeSet()[0]);
        }
    }
}

TEST(Planner, DistributeUsesAllPimSubarrays)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    EXPECT_EQ(p.computeSet().size(), cfg.rm.pimSubarrays());
    // Staging overlaps the compute set (the distribute flaw).
    EXPECT_EQ(p.stagingSet().size(), 1u);
    EXPECT_EQ(p.stagingSet()[0], p.computeSet()[0]);
}

TEST(Planner, UnblockStagingIsDisjointFromCompute)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    std::set<std::uint32_t> compute(p.computeSet().begin(),
                                    p.computeSet().end());
    for (auto s : p.stagingSet())
        EXPECT_EQ(compute.count(s), 0u)
            << "staging subarray " << s << " inside compute set";
}

TEST(Planner, PimVpcCountForMatVec)
{
    // One MUL VPC per output row regardless of opt level.
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = cfgWith(level);
        Planner p(cfg);
        VpcSchedule s = p.plan(tinyMatVec(100, 40));
        EXPECT_EQ(s.pimVpcs(), 100u) << optLevelName(level);
        checkWellFormed(s, cfg);
    }
}

TEST(Planner, MatMulCountsOneDotPerOutput)
{
    TaskGraph g;
    auto a = g.addMatrix("A", 30, 20);
    auto b = g.addMatrix("B", 20, 25);
    auto c = g.addMatrix("C", 30, 25);
    g.addOp(MatOpKind::MatMul, a, b, c);
    Planner p(cfgWith(OptLevel::Unblock));
    VpcSchedule s = p.plan(g);
    EXPECT_EQ(s.pimVpcs(), 30u * 25u);
}

TEST(Planner, ComputeBatchesDependOnTheirCopies)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec());
    for (const auto &b : s.batches) {
        if (b.kind != VpcKind::Mul)
            continue;
        ASSERT_NE(b.depA, kNoBatch);
        const VpcBatch &dep = s.batches[b.depA];
        EXPECT_EQ(dep.kind, VpcKind::Tran);
        EXPECT_EQ(dep.dstSubarray, b.subarray);
    }
}

TEST(Planner, DistributePairsComputeWithCollect)
{
    // The naive order: every MUL batch is immediately followed by
    // the TRAN collecting its results (the head-of-line trigger).
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec(512, 64));
    for (std::size_t i = 0; i < s.batches.size(); ++i) {
        if (s.batches[i].kind != VpcKind::Mul)
            continue;
        ASSERT_LT(i + 1, s.batches.size());
        const VpcBatch &next = s.batches[i + 1];
        EXPECT_EQ(next.kind, VpcKind::Tran);
        EXPECT_EQ(next.depA, std::uint32_t(i));
        EXPECT_EQ(next.subarray, s.batches[i].subarray);
    }
}

TEST(Planner, UnblockSeparatesComputeAndCollectPhases)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec(512, 64));
    // Under unblock, no MUL batch is immediately followed by its
    // own collect.
    for (std::size_t i = 0; i + 1 < s.batches.size(); ++i) {
        if (s.batches[i].kind != VpcKind::Mul)
            continue;
        const VpcBatch &next = s.batches[i + 1];
        if (next.kind == VpcKind::Tran) {
            EXPECT_NE(next.depA, std::uint32_t(i));
        }
    }
}

TEST(Planner, SlicingSplitsOversizedVectors)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    cfg.maxVpcElements = 16;
    Planner p(cfg);
    VpcSchedule s = p.plan(tinyMatVec(4, 50)); // 50 > 16
    EXPECT_GT(p.stats().slicedVpcs, 0u);
    for (const auto &b : s.batches) {
        if (isPimVpc(b.kind)) {
            EXPECT_LE(b.vectorLen, 16u);
        }
    }
    checkWellFormed(s, cfg);
}

TEST(Planner, StatsMatchScheduleCounters)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    TaskGraph g = makePolybench(PolybenchKernel::Atax, 64);
    VpcSchedule s = p.plan(g);
    EXPECT_EQ(p.stats().pimVpcs, s.pimVpcs());
    EXPECT_EQ(p.stats().moveVpcs, s.moveVpcs());
    EXPECT_EQ(p.stats().batches, s.batches.size());
}

TEST(Planner, EveryPolybenchKernelLowersCleanly)
{
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = cfgWith(level);
        Planner p(cfg);
        for (PolybenchKernel k : allPolybenchKernels()) {
            TaskGraph g = makePolybench(k, 32);
            VpcSchedule s = p.plan(g);
            EXPECT_GT(s.pimVpcs(), 0u) << polybenchName(k);
            checkWellFormed(s, cfg);
        }
    }
}

/** Two chained matmuls: the second consumes a *produced* B, whose
 * columns must first be assembled (gathered) on their stream homes. */
TaskGraph
chainedMatMuls(unsigned n = 32)
{
    TaskGraph g;
    g.name = "mm-chain";
    auto a0 = g.addMatrix("A0", n, n);
    auto b0 = g.addMatrix("B0", n, n);
    auto b1 = g.addMatrix("B1", n, n);
    auto a1 = g.addMatrix("A1", n, n);
    auto c = g.addMatrix("C", n, n);
    g.addOp(MatOpKind::MatMul, a0, b0, b1);
    g.addOp(MatOpKind::MatMul, a1, b1, c);
    return g;
}

/** Regression (matmul result tracking): the batch recorded as
 * publishing a matmul's result must be the final collect TRAN that
 * lands C on its home — not the last compute batch. */
TEST(PlannerRegression, MatMulResultIsPublishedByFinalCollect)
{
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = cfgWith(level);
        Planner p(cfg);
        TaskGraph g = chainedMatMuls();
        VpcSchedule s = p.plan(g);
        ASSERT_EQ(s.opResultBatch.size(), g.ops.size());

        const std::uint32_t pub = s.opResultBatch[0];
        ASSERT_NE(pub, kNoBatch);
        const VpcBatch &b = s.batches[pub];
        EXPECT_EQ(b.kind, VpcKind::Tran) << optLevelName(level);
        // The collect lands on B1's home subarray.
        const std::uint32_t home =
            p.stagingSet()[g.ops[0].c % p.stagingSet().size()];
        EXPECT_EQ(b.dstSubarray, home) << optLevelName(level);
    }
}

/** Regression (matmul result tracking): gathers assembling a
 * produced B must depend on the producing op's final collect. */
TEST(PlannerRegression, ProducedBAssemblyWaitsForCollects)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    VpcSchedule s = p.plan(chainedMatMuls());
    const std::uint32_t pub = s.opResultBatch[0];

    // Every batch of the second op that reads B1 from its
    // row-distributed placement (the gathers) depends on the final
    // collect of the first op.
    unsigned gathers_checked = 0;
    for (std::uint32_t i = pub + 1; i < s.batches.size(); ++i) {
        const VpcBatch &b = s.batches[i];
        if (b.kind != VpcKind::Tran || b.vectorLen != 1)
            continue; // not a per-element gather
        if (b.depA == kNoBatch)
            continue;
        if (s.batches[b.depA].kind == VpcKind::Mul)
            continue; // a collect of the second op itself
        EXPECT_EQ(b.depA, pub);
        gathers_checked++;
        if (gathers_checked > 8)
            break;
    }
    EXPECT_GT(gathers_checked, 0u);
}

/**
 * Regression (matmul result tracking), behavioral: a downstream
 * consumer synchronizing on the recorded publication batch must wait
 * for the collects to land. Appending such a consumer to the
 * schedule yields a strictly longer makespan than wiring it the
 * pre-fix way (to the last compute batch) — so this test fails when
 * opResultBatch records the last compute instead of the collect.
 */
TEST(PlannerRegression, ConsumerOfResultBatchExtendsMakespan)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    TaskGraph g;
    g.name = "mm";
    auto a = g.addMatrix("A", 32, 32);
    auto b = g.addMatrix("B", 32, 32);
    auto c = g.addMatrix("C", 32, 32);
    g.addOp(MatOpKind::MatMul, a, b, c);
    VpcSchedule s = p.plan(g);
    const std::uint32_t pub = s.opResultBatch[0];
    std::uint32_t last_mul = kNoBatch;
    for (std::uint32_t i = 0; i < s.batches.size(); ++i)
        if (s.batches[i].kind == VpcKind::Mul)
            last_mul = i;
    ASSERT_NE(last_mul, kNoBatch);

    // A downstream compute consuming C, placed on a compute slot,
    // synchronized the way the planner synchronizes consumers: on
    // the publication batch.
    auto with_probe = [&](std::uint32_t dep) {
        VpcSchedule probe = s;
        VpcBatch b;
        b.kind = VpcKind::Mul;
        b.subarray = p.computeSet().back();
        b.vpcCount = 1;
        b.vectorLen = 8;
        b.depA = dep;
        probe.push(b);
        Executor ex(cfg);
        return ex.run(probe).makespan;
    };
    // Pre-fix the planner recorded last_mul, so both wirings were
    // the same batch and the makespans were equal.
    EXPECT_NE(pub, last_mul);
    EXPECT_GT(with_probe(pub), with_probe(last_mul));
}

/** Regression (element-wise vector ops): the compute batch must
 * depend on the copies of *both* operands, not only on b's. */
TEST(PlannerRegression, VectorAddDependsOnBothOperandCopies)
{
    // Unblock gives a and b distinct home subarrays, making the two
    // copies distinguishable.
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    TaskGraph g;
    auto x = g.addMatrix("x", 2000, 1);
    auto y = g.addMatrix("y", 2000, 1);
    auto z = g.addMatrix("z", 2000, 1);
    g.addOp(MatOpKind::MatAdd, x, y, z);
    VpcSchedule s = p.plan(g);

    const auto &staging = p.stagingSet();
    const std::uint32_t home_x = staging[x % staging.size()];
    const std::uint32_t home_y = staging[y % staging.size()];
    ASSERT_NE(home_x, home_y);

    // Only the first slice of each chunk's compute carries the copy
    // dependencies (later slices chain on their predecessor), so
    // look at Adds whose depA is a transfer.
    unsigned adds = 0;
    for (const auto &b : s.batches) {
        if (b.kind != VpcKind::Add || b.depA == kNoBatch ||
            s.batches[b.depA].kind != VpcKind::Tran)
            continue;
        const VpcBatch &ca = s.batches[b.depA];
        ASSERT_NE(b.depB, kNoBatch);
        const VpcBatch &cb = s.batches[b.depB];
        EXPECT_EQ(cb.kind, VpcKind::Tran);
        EXPECT_EQ(ca.subarray, home_x);
        EXPECT_EQ(cb.subarray, home_y);
        EXPECT_EQ(ca.dstSubarray, b.subarray);
        EXPECT_EQ(cb.dstSubarray, b.subarray);
        adds++;
    }
    EXPECT_GT(adds, 1u);
}

/** opResultBatch is filled for every op and points at real batches. */
TEST(Planner, OpResultBatchWellFormed)
{
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = cfgWith(level);
        Planner p(cfg);
        for (PolybenchKernel k : allPolybenchKernels()) {
            TaskGraph g = makePolybench(k, 32);
            VpcSchedule s = p.plan(g);
            ASSERT_EQ(s.opResultBatch.size(), g.ops.size());
            for (std::size_t i = 0; i < g.ops.size(); ++i) {
                if (g.ops[i].kind == MatOpKind::Nonlinear) {
                    EXPECT_EQ(s.opResultBatch[i], kNoBatch);
                    continue;
                }
                ASSERT_LT(s.opResultBatch[i], s.batches.size());
            }
        }
    }
}

TEST(Planner, ObserveWearReranksTowardLeastWorn)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    const auto before_compute = p.computeSet();
    const auto before_staging = p.stagingSet();
    ASSERT_GT(before_compute.size(), 1u);

    // Pristine device (empty wear vector): stable sort keeps the
    // constructor's order, including for ids beyond the vector.
    p.observeWear({});
    EXPECT_EQ(p.computeSet(), before_compute);
    EXPECT_EQ(p.stagingSet(), before_staging);

    // Make the current compute front-runner the most worn subarray:
    // it must drop to the back of the ranking, since the remainder
    // rows of row distribution land on the leading slots.
    const std::uint32_t hot = before_compute.front();
    std::vector<std::uint64_t> wear(cfg.rm.totalSubarrays(), 0);
    wear[hot] = 1000;
    p.observeWear(wear);
    EXPECT_NE(p.computeSet().front(), hot);
    EXPECT_EQ(p.computeSet().back(), hot);
    // Re-ranking permutes, never changes membership.
    std::set<std::uint32_t> a(before_compute.begin(),
                              before_compute.end());
    std::set<std::uint32_t> b(p.computeSet().begin(),
                              p.computeSet().end());
    EXPECT_EQ(a, b);
    std::set<std::uint32_t> sa(before_staging.begin(),
                               before_staging.end());
    std::set<std::uint32_t> sb(p.stagingSet().begin(),
                               p.stagingSet().end());
    EXPECT_EQ(sa, sb);

    // Plans remain well-formed after re-ranking.
    VpcSchedule s = p.plan(tinyMatVec());
    checkWellFormed(s, cfg);
}

TEST(Planner, ObserveWearKeepsNonUnblockStagingInvariant)
{
    // Under base/distribute the staging set is pinned to the compute
    // front-runner; wear re-ranking must preserve that coupling.
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    const std::uint32_t hot = p.computeSet().front();
    std::vector<std::uint64_t> wear(cfg.rm.totalSubarrays(), 0);
    wear[hot] = 77;
    p.observeWear(wear);
    ASSERT_EQ(p.stagingSet().size(), 1u);
    EXPECT_EQ(p.stagingSet()[0], p.computeSet().front());
    EXPECT_NE(p.computeSet().front(), hot);
    checkWellFormed(p.plan(tinyMatVec()), cfg);
}

TEST(Planner, ObserveWearIdsBeyondVectorArePristine)
{
    // A wear vector shorter than the subarray count is legal: ids
    // beyond it count as pristine (wear 0) and must rank ahead of
    // explicitly worn subarrays.
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    const auto before = p.computeSet();
    ASSERT_GT(before.size(), 2u);

    // Wear only the first member; everyone beyond index 1 reads
    // from past the vector's end.
    std::vector<std::uint64_t> wear = {1000};
    // Index 0 holds the global id of some subarray; make sure the
    // short vector actually covers the current front-runner.
    ASSERT_EQ(before.front(), 0u);
    p.observeWear(wear);
    EXPECT_EQ(p.computeSet().back(), 0u);
    // Everyone else (implicitly pristine) keeps relative order.
    for (std::size_t i = 0; i + 1 < before.size(); ++i)
        EXPECT_EQ(p.computeSet()[i], before[i + 1]) << i;
}

TEST(Planner, ObserveWearTiesPreservePreviousOrder)
{
    SystemConfig cfg = cfgWith(OptLevel::Unblock);
    Planner p(cfg);
    const auto baseline = p.computeSet();
    ASSERT_GT(baseline.size(), 3u);

    // All-equal wear: a full permutation-free no-op, twice.
    std::vector<std::uint64_t> flat(cfg.rm.totalSubarrays(), 42);
    p.observeWear(flat);
    EXPECT_EQ(p.computeSet(), baseline);
    p.observeWear(flat);
    EXPECT_EQ(p.computeSet(), baseline);

    // Two-level wear: the worn half moves back but keeps its own
    // internal order, as does the pristine half (stable re-rank —
    // the deterministic-replan regression this test pins).
    std::vector<std::uint64_t> wear(cfg.rm.totalSubarrays(), 0);
    std::vector<std::uint32_t> worn, fresh;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        if (i % 2 == 0) {
            wear[baseline[i]] = 9;
            worn.push_back(baseline[i]);
        } else {
            fresh.push_back(baseline[i]);
        }
    }
    p.observeWear(wear);
    std::vector<std::uint32_t> expect = fresh;
    expect.insert(expect.end(), worn.begin(), worn.end());
    EXPECT_EQ(p.computeSet(), expect);
}

TEST(Planner, ApplyQuarantineShrinksSetsGracefully)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    const auto before = p.computeSet();
    ASSERT_GT(before.size(), 2u);

    // Retire the front-runner: membership shrinks by one, order of
    // the survivors is untouched, staging follows the new front.
    p.applyQuarantine({before.front()});
    ASSERT_EQ(p.computeSet().size(), before.size() - 1);
    for (std::size_t i = 0; i < p.computeSet().size(); ++i)
        EXPECT_EQ(p.computeSet()[i], before[i + 1]) << i;
    ASSERT_EQ(p.stagingSet().size(), 1u);
    EXPECT_EQ(p.stagingSet()[0], p.computeSet().front());

    // Unknown ids are ignored.
    p.applyQuarantine({9999});
    EXPECT_EQ(p.computeSet().size(), before.size() - 1);

    // Graceful floor: quarantining everything leaves one survivor
    // serving degraded rather than an empty compute set.
    p.applyQuarantine(before);
    ASSERT_EQ(p.computeSet().size(), 1u);
    EXPECT_EQ(p.stagingSet()[0], p.computeSet()[0]);

    // Plans over the shrunk set stay well-formed (re-tiling over
    // the survivors happens automatically in lowering).
    checkWellFormed(p.plan(tinyMatVec()), cfg);
}

TEST(Planner, ApplyQuarantineRepeatedlyDownToSurvivorFloor)
{
    // The recovery ladder quarantines one subarray at a time across
    // repeated rungs; the planner must shrink monotonically to the
    // >= 1-survivor floor and then hold there, staying plannable
    // after every step.
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    const auto initial = p.computeSet();
    ASSERT_GT(initial.size(), 1u);

    for (std::uint32_t victim : initial) {
        const std::size_t before = p.computeSet().size();
        p.applyQuarantine({victim});
        const std::size_t after = p.computeSet().size();
        if (before > 1) {
            EXPECT_EQ(after, before - 1);
            EXPECT_EQ(std::count(p.computeSet().begin(),
                                 p.computeSet().end(), victim),
                      0);
        } else {
            // Floor: the last survivor keeps serving even when it
            // is itself the quarantine target.
            EXPECT_EQ(after, 1u);
        }
        ASSERT_GE(p.stagingSet().size(), 1u);
        checkWellFormed(p.plan(tinyMatVec()), cfg);
    }
    ASSERT_EQ(p.computeSet().size(), 1u);
    // Idempotent at the floor: repeated application cannot empty
    // the set.
    const auto floor_set = p.computeSet();
    p.applyQuarantine(floor_set);
    p.applyQuarantine(floor_set);
    EXPECT_EQ(p.computeSet(), floor_set);
}

TEST(Planner, PlanRecoveryEmitsRecoveryFlaggedTrans)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    VpcSchedule s = p.planRecovery({{0, 2}, {1, 3}}, 4096);
    ASSERT_EQ(s.batches.size(), 2u);
    for (const VpcBatch &b : s.batches) {
        EXPECT_EQ(b.kind, VpcKind::Tran);
        EXPECT_TRUE(b.recovery);
        EXPECT_FALSE(b.migration);
        EXPECT_EQ(b.vpcCount, 1u);
        EXPECT_EQ(b.vectorLen, 4096u);
    }
}

TEST(Planner, PlanMigrationEmitsFlaggedIndependentTrans)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    VpcSchedule s =
        p.planMigration({{0, 2}, {1, 3}}, 4096);
    ASSERT_EQ(s.batches.size(), 2u);
    for (const VpcBatch &b : s.batches) {
        EXPECT_EQ(b.kind, VpcKind::Tran);
        EXPECT_TRUE(b.migration);
        EXPECT_EQ(b.vpcCount, 1u);
        EXPECT_EQ(b.vectorLen, 4096u);
        EXPECT_EQ(b.depA, kNoBatch);
        EXPECT_EQ(b.depB, kNoBatch);
    }
    EXPECT_EQ(s.batches[0].subarray, 0u);
    EXPECT_EQ(s.batches[0].dstSubarray, 2u);
    EXPECT_EQ(s.batches[1].subarray, 1u);
    EXPECT_EQ(s.batches[1].dstSubarray, 3u);
    EXPECT_EQ(s.moveVpcs(), 2u);
    EXPECT_EQ(s.pimVpcs(), 0u);
}

TEST(PlannerDeath, PlanMigrationRejectsDegenerateMoves)
{
    SystemConfig cfg = cfgWith(OptLevel::Distribute);
    Planner p(cfg);
    EXPECT_DEATH(p.planMigration({{2, 2}}, 4096), "source");
    EXPECT_DEATH(p.planMigration({{0, 1}}, 0), "zero bytes");
}

TEST(ScheduleDeath, ForwardDependencyPanics)
{
    VpcSchedule s;
    VpcBatch b;
    b.kind = VpcKind::Mul;
    b.vectorLen = 1;
    b.depA = 5; // no such batch yet
    EXPECT_DEATH(s.push(b), "future");
}

} // namespace
} // namespace streampim
