/**
 * @file
 * Transactional VPC recovery: journal roundtrip fidelity, the
 * fault-free purity of snapshot/rollback traffic, each rung of the
 * RecoveryManager escalation ladder, and the honest rolled-back
 * surfacing of an exhausted ladder.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "common/rng.hh"
#include "core/stream_pim.hh"
#include "runtime/recovery.hh"

namespace streampim
{
namespace
{

std::vector<std::uint8_t>
randomBytes(std::uint64_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(count);
    for (auto &b : v)
        b = std::uint8_t(rng.below(256));
    return v;
}

TEST(BatchJournal, RoundtripRestoresEveryPreBatchByte)
{
    // A journaled batch followed by a rollback of every group must
    // restore the device bit-exact: the journal's per-VPC write sets
    // (destinations plus remote-operand staging tails) are exactly
    // the bytes execution can touch.
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();
    const auto init = randomBytes(sys.capacityBytes(), 123);
    sys.write(0, init);

    const Vpc vpcs[] = {
        {VpcKind::Tran, 0, 0, 512, 64},            // local copy
        {VpcKind::Add, 16, per + 128, 1024, 32},   // remote src2
        {VpcKind::Mul, per + 0, per + 64, 2 * per + 2048, 16},
        // ^ remote dst: stages the 4-byte result in sub 1's tail
        {VpcKind::Smul, 2 * per + 64, 3 * per + 8, 3 * per + 256,
         48},                                      // all remote
        {VpcKind::Tran, 3 * per + 0, 0, 2 * per + 4096, 80},
    };
    for (const Vpc &v : vpcs)
        ASSERT_TRUE(sys.submit(v));

    std::vector<VpcExecutionRecord> records;
    BatchJournal journal;
    sys.processQueueInto(records, 1, journal);
    ASSERT_EQ(journal.groups(), std::size(vpcs));
    ASSERT_GT(journal.snapshotBytes(), 0u);
    ASSERT_NE(sys.read(0, sys.capacityBytes()), init)
        << "batch should have changed memory";

    for (std::size_t g = 0; g < journal.groups(); ++g)
        EXPECT_GT(sys.rollbackGroup(journal, g), 0u);
    EXPECT_EQ(sys.read(0, sys.capacityBytes()), init);
}

TEST(BatchJournal, SnapshotAndRollbackSampleNoFaults)
{
    // Journal and rollback traffic runs through the fault-free
    // controller path: real wear (deposits) accrues, but no fault is
    // sampled and the injector RNG streams do not advance.
    StreamPimSystem sys;
    sys.write(0, randomBytes(4096, 7));

    FaultConfig fc;
    fc.pStep = 2e-4;
    fc.seed = 77;
    sys.enableFaultInjection(fc);

    ASSERT_TRUE(sys.submit({VpcKind::Add, 0, 64, 1024, 64}));
    ASSERT_TRUE(sys.submit({VpcKind::Tran, 128, 0, 2048, 128}));
    std::vector<VpcExecutionRecord> records;
    BatchJournal journal;
    sys.processQueueInto(records, 1, journal);

    const FaultStats mid = sys.totalFaultStats();
    auto deposits = [&] {
        std::uint64_t d = 0;
        for (const SubarrayWear &w : sys.wearSummaries())
            d += w.deposits;
        return d;
    };
    const std::uint64_t deposits_mid = deposits();

    for (std::size_t g = 0; g < journal.groups(); ++g)
        sys.rollbackGroup(journal, g);
    sys.journalExtra(journal, 0, 3000, 64);
    sys.controllerCopy(0, 3200, 64);

    const FaultStats after = sys.totalFaultStats();
    EXPECT_EQ(after.pulses, mid.pulses);
    EXPECT_EQ(after.faultsInjected, mid.faultsInjected);
    EXPECT_EQ(after.depositPulses, mid.depositPulses);
    EXPECT_GT(deposits(), deposits_mid)
        << "rollback/copy writes still wear the tracks";
    sys.disableFaultInjection();
}

/** Fixture state shared by the ladder tests: two 64-byte operands on
 * subarray 0 and the byte-wise mod-256 sum they should produce. */
struct LadderSetup
{
    std::vector<std::uint8_t> a, b, want;
    Vpc vpc{VpcKind::Add, 0, 64, 256, 64};

    void
    stage(StreamPimSystem &sys) const
    {
        sys.write(0, a);
        sys.write(64, b);
    }

    LadderSetup()
        : a(randomBytes(64, 1)), b(randomBytes(64, 2)), want(64)
    {
        for (std::size_t i = 0; i < want.size(); ++i)
            want[i] = std::uint8_t(a[i] + b[i]);
    }
};

TEST(RecoveryManager, RetryInPlaceRestoresAndRecomputes)
{
    LadderSetup s;
    StreamPimSystem sys;
    s.stage(sys);
    FaultConfig fc;
    fc.pStep = 1e-12; // live injector, deterministically benign
    sys.enableFaultInjection(fc);

    BatchJournal journal;
    sys.journalVpc(journal, s.vpc);
    // Simulate a Failed execution's garbage output.
    sys.write(s.vpc.dst, randomBytes(64, 999));

    RecoveryConfig rc;
    rc.enabled = true;
    rc.retryBudget = 2;
    rc.rehomeBudget = 0;
    rc.replanBudget = 0;
    RecoveryManager mgr(rc, sys);
    RecoveryManager::Hooks hooks;
    hooks.failingSubarray = [](std::size_t) { return 0u; };

    const VpcRecoveryOutcome out = mgr.recoverVpc(0, journal, hooks);
    EXPECT_EQ(out.rung, RecoveryRung::RetryInPlace);
    EXPECT_TRUE(out.recovered());
    EXPECT_FALSE(out.rehomed);
    EXPECT_EQ(sys.read(s.vpc.dst, 64), s.want);
    EXPECT_EQ(mgr.stats().recoveredByRetry, 1u);
    EXPECT_EQ(mgr.stats().rollbacks, 1u);
    EXPECT_GT(mgr.stats().rollbackBytes, 0u);
    sys.disableFaultInjection();
}

/** Re-home hook used by the rung-2/3 tests: moves both operands to
 * subarray @p to at the same offsets and rewrites the VPC. */
RecoveryManager::Hooks
movingHooks(StreamPimSystem &sys, BatchJournal &journal)
{
    RecoveryManager::Hooks hooks;
    hooks.failingSubarray = [](std::size_t) { return 0u; };
    hooks.rehome = [&sys, &journal](std::size_t g, std::uint32_t to,
                                    Vpc &out) {
        const Addr base =
            Addr(to) * sys.params().bytesPerSubarray();
        sys.controllerCopy(0, base + 0, 64);
        sys.controllerCopy(64, base + 64, 64);
        out.src1 = base + 0;
        out.src2 = base + 64;
        out.dst = base + 256;
        sys.journalExtra(journal, g, out.dst, 64);
        return true;
    };
    return hooks;
}

TEST(RecoveryManager, RehomePicksStrictlyHealthierSubarray)
{
    LadderSetup s;
    StreamPimSystem sys;
    s.stage(sys); // wears subarray 0; 1..3 stay pristine
    const std::uint64_t per = sys.params().bytesPerSubarray();
    FaultConfig fc;
    fc.pStep = 1e-12;
    sys.enableFaultInjection(fc);

    BatchJournal journal;
    sys.journalVpc(journal, s.vpc);

    RecoveryConfig rc;
    rc.enabled = true;
    rc.retryBudget = 0; // skip straight to rung 2
    rc.rehomeBudget = 1;
    rc.replanBudget = 0;
    RecoveryManager mgr(rc, sys);

    const VpcRecoveryOutcome out =
        mgr.recoverVpc(0, journal, movingHooks(sys, journal));
    EXPECT_EQ(out.rung, RecoveryRung::Rehome);
    EXPECT_TRUE(out.rehomed);
    EXPECT_EQ(out.newHome, 1u) << "least-worn survivor by id order";
    EXPECT_EQ(sys.read(per + 256, 64), s.want);
    EXPECT_EQ(mgr.stats().recoveredByRehome, 1u);
    EXPECT_EQ(mgr.stats().rehomes, 1u);
    EXPECT_FALSE(mgr.isQuarantined(0));
    sys.disableFaultInjection();
}

TEST(RecoveryManager, RehomeRefusesEquallyWornTargets)
{
    // With every subarray byte-identical in wear there is no
    // *strictly* healthier target, so rung 2 must refuse to move
    // (moving onto equal wear is wasted budget) and the episode
    // falls through to an honest Unrecoverable.
    LadderSetup s;
    StreamPimSystem sys; // no staging writes: all wear stays zero

    BatchJournal journal;
    sys.journalVpc(journal, s.vpc);

    RecoveryConfig rc;
    rc.enabled = true;
    rc.retryBudget = 0;
    rc.rehomeBudget = 1;
    rc.replanBudget = 0;
    RecoveryManager mgr(rc, sys);

    bool moved = false;
    RecoveryManager::Hooks hooks;
    hooks.failingSubarray = [](std::size_t) { return 0u; };
    hooks.rehome = [&moved](std::size_t, std::uint32_t, Vpc &) {
        moved = true;
        return true;
    };

    const VpcRecoveryOutcome out = mgr.recoverVpc(0, journal, hooks);
    EXPECT_EQ(out.rung, RecoveryRung::Unrecoverable);
    EXPECT_FALSE(moved);
    EXPECT_EQ(mgr.stats().rehomes, 0u);
}

TEST(RecoveryManager, ReplanQuarantinesTheCulprit)
{
    LadderSetup s;
    StreamPimSystem sys;
    s.stage(sys);
    const std::uint64_t per = sys.params().bytesPerSubarray();
    FaultConfig fc;
    fc.pStep = 1e-12;
    sys.enableFaultInjection(fc);

    BatchJournal journal;
    sys.journalVpc(journal, s.vpc);

    RecoveryConfig rc;
    rc.enabled = true;
    rc.retryBudget = 0;
    rc.rehomeBudget = 0; // skip straight to rung 3
    rc.replanBudget = 1;
    RecoveryManager mgr(rc, sys);

    const VpcRecoveryOutcome out =
        mgr.recoverVpc(0, journal, movingHooks(sys, journal));
    EXPECT_EQ(out.rung, RecoveryRung::Replan);
    EXPECT_TRUE(mgr.isQuarantined(0)) << "culprit is sticky-bad";
    EXPECT_FALSE(mgr.isQuarantined(out.newHome));
    EXPECT_EQ(sys.read(per + 256, 64), s.want);
    EXPECT_EQ(mgr.stats().replans, 1u);
    EXPECT_EQ(mgr.stats().recoveredByReplan, 1u);
    sys.disableFaultInjection();
}

TEST(RecoveryManager, ExhaustedLadderRollsBackBitExact)
{
    // Hostile endurance: nearly every deposit nucleation fails, the
    // per-mat spare pools exhaust, and every re-execution comes back
    // Failed. The ladder must exhaust its budgets, leave the
    // pre-batch bytes in place (stale, never corrupt) and surface
    // Unrecoverable.
    LadderSetup s;
    StreamPimSystem sys;
    s.stage(sys);
    const std::vector<std::uint8_t> before =
        sys.read(0, sys.capacityBytes());

    FaultConfig fc;
    fc.pWrite0 = 0.95;
    fc.redepositRetryBudget = 1;
    fc.seed = 11;
    sys.enableFaultInjection(fc);

    BatchJournal journal;
    sys.journalVpc(journal, s.vpc);
    const VpcExecutionRecord rec = sys.executeSingle(s.vpc);
    ASSERT_EQ(rec.fault.status, FaultStatus::Failed)
        << "setup: the first execution must fail";

    RecoveryConfig rc;
    rc.enabled = true;
    rc.retryBudget = 2;
    rc.rehomeBudget = 0;
    rc.replanBudget = 0;
    RecoveryManager mgr(rc, sys);
    RecoveryManager::Hooks hooks;
    hooks.failingSubarray = [](std::size_t) { return 0u; };

    const VpcRecoveryOutcome out = mgr.recoverVpc(0, journal, hooks);
    EXPECT_EQ(out.rung, RecoveryRung::Unrecoverable);
    EXPECT_FALSE(out.recovered());
    EXPECT_EQ(out.finalStatus, FaultStatus::Failed);
    EXPECT_EQ(mgr.stats().unrecoverable, 1u);
    EXPECT_EQ(mgr.stats().retries, 2u);
    sys.disableFaultInjection();

    // Rolled back: the destination (and everything else) holds its
    // pre-batch bytes, not a torn half-write.
    EXPECT_EQ(sys.read(0, sys.capacityBytes()), before);
}

TEST(RecoveryConfigDeath, AllZeroBudgetsAreRejected)
{
    RecoveryConfig rc;
    rc.enabled = true;
    rc.retryBudget = 0;
    rc.rehomeBudget = 0;
    rc.replanBudget = 0;
    EXPECT_DEATH(rc.validate(), "ladder budget");
}

} // namespace
} // namespace streampim
