/**
 * @file
 * Tests for the PimTask programming interface (Fig. 16).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "runtime/pim_task.hh"

namespace streampim
{
namespace
{

TEST(PimTask, MatMulComputesAndTimes)
{
    const unsigned n = 8;
    std::vector<std::uint8_t> a(n * n, 2), b(n * n, 3), c(n * n, 0);
    PimTask task;
    auto ma = task.addMatrix(a.data(), n, n);
    auto mb = task.addMatrix(b.data(), n, n);
    auto mc = task.addMatrix(c.data(), n, n);
    task.addOperation(MatOpKind::MatMul, ma, mb, mc);
    ExecutionReport r = task.run();
    // Every output element = 8 * 2 * 3 = 48.
    for (auto v : c)
        EXPECT_EQ(v, 48u);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_EQ(task.planStats().pimVpcs, std::uint64_t(n) * n);
}

TEST(PimTask, MatAddAndScale)
{
    const unsigned n = 6;
    std::vector<std::uint8_t> a(n * n), b(n * n), c(n * n);
    for (unsigned i = 0; i < n * n; ++i) {
        a[i] = std::uint8_t(i);
        b[i] = std::uint8_t(2 * i);
    }
    PimTask task;
    auto ma = task.addMatrix(a.data(), n, n);
    auto mb = task.addMatrix(b.data(), n, n);
    auto mc = task.addMatrix(c.data(), n, n);
    task.addOperation(MatOpKind::MatAdd, ma, mb, mc);
    task.addScale(3, mc, mc);
    task.run();
    for (unsigned i = 0; i < n * n; ++i)
        EXPECT_EQ(c[i], std::uint8_t(3 * std::uint8_t(3 * i)));
}

TEST(PimTask, MatVecBothOrientations)
{
    const unsigned rows = 4, cols = 3;
    // A = [[1,2,3],[4,5,6],[7,8,9],[10,11,12]], x = [1,2,3].
    std::vector<std::uint8_t> a = {1, 2,  3,  4,  5,  6,
                                   7, 8, 9, 10, 11, 12};
    std::vector<std::uint8_t> x = {1, 2, 3};
    std::vector<std::uint8_t> y(rows), xt(rows, 1), yt(cols);
    {
        PimTask task;
        auto ma = task.addMatrix(a.data(), rows, cols);
        auto mx = task.addMatrix(x.data(), cols, 1);
        auto my = task.addMatrix(y.data(), rows, 1);
        task.addOperation(MatOpKind::MatVec, ma, mx, my);
        task.run();
    }
    EXPECT_EQ(y[0], 14u);  // 1+4+9
    EXPECT_EQ(y[3], 10u + 22 + 36);
    {
        PimTask task;
        auto ma = task.addMatrix(a.data(), rows, cols);
        auto mv = task.addMatrix(xt.data(), rows, 1);
        auto mo = task.addMatrix(yt.data(), cols, 1);
        task.addOperation(MatOpKind::MatVecT, ma, mv, mo);
        task.run();
    }
    EXPECT_EQ(yt[0], 1u + 4 + 7 + 10); // column sums
    EXPECT_EQ(yt[2], 3u + 6 + 9 + 12);
}

TEST(PimTask, BitAccurateAndFastPathsAgree)
{
    const unsigned n = 6;
    Rng rng(4);
    std::vector<std::uint8_t> a(n * n), b(n * n);
    for (auto &v : a)
        v = std::uint8_t(rng.below(256));
    for (auto &v : b)
        v = std::uint8_t(rng.below(256));

    auto run_with = [&](std::uint64_t limit) {
        std::vector<std::uint8_t> aa = a, bb = b, cc(n * n, 0);
        PimTask task;
        auto ma = task.addMatrix(aa.data(), n, n);
        auto mb = task.addMatrix(bb.data(), n, n);
        auto mc = task.addMatrix(cc.data(), n, n);
        task.addOperation(MatOpKind::MatMul, ma, mb, mc);
        task.setBitAccurateLimit(limit);
        task.run();
        return cc;
    };
    auto bit_accurate = run_with(~0ull); // always gate-level
    auto fast = run_with(0);             // always host fast path
    EXPECT_EQ(bit_accurate, fast);
}

TEST(PimTask, ChainedOperationsSeeIntermediateResults)
{
    const unsigned n = 4;
    std::vector<std::uint8_t> a(n * n, 1), b(n * n, 1);
    std::vector<std::uint8_t> ab(n * n), out(n * n);
    PimTask task;
    auto ma = task.addMatrix(a.data(), n, n);
    auto mb = task.addMatrix(b.data(), n, n);
    auto mab = task.addMatrix(ab.data(), n, n);
    auto mout = task.addMatrix(out.data(), n, n);
    task.addOperation(MatOpKind::MatMul, ma, mb, mab); // all 4s
    task.addOperation(MatOpKind::MatAdd, mab, mab, mout);
    task.run();
    for (auto v : out)
        EXPECT_EQ(v, 8u);
}

TEST(PimTask, TimedReportScalesWithWork)
{
    auto time_for = [](unsigned n) {
        std::vector<std::uint8_t> a(n * n, 1), b(n * n, 1),
            c(n * n, 0);
        PimTask task;
        auto ma = task.addMatrix(a.data(), n, n);
        auto mb = task.addMatrix(b.data(), n, n);
        auto mc = task.addMatrix(c.data(), n, n);
        task.addOperation(MatOpKind::MatMul, ma, mb, mc);
        return task.run().makespan;
    };
    EXPECT_LT(time_for(8), time_for(32));
}

TEST(PimTaskDeath, RunTwicePanics)
{
    std::vector<std::uint8_t> a(4, 1);
    PimTask task;
    auto ma = task.addMatrix(a.data(), 2, 2);
    task.addOperation(MatOpKind::MatAdd, ma, ma, ma);
    task.run();
    EXPECT_DEATH(task.run(), "once");
}

TEST(PimTaskDeath, NullBufferPanics)
{
    PimTask task;
    EXPECT_DEATH(task.addMatrix(nullptr, 2, 2), "null");
}

} // namespace
} // namespace streampim
