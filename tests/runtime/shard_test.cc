#include <gtest/gtest.h>

#include <cstdint>

#include "runtime/shard.hh"

using namespace streampim;

namespace
{

/** Blocks must tile [0, n) exactly: contiguous, in order, no
 * overlap, no gap, and idle shards only at the tail. */
void
expectExactCover(const std::vector<RowBlock> &blocks,
                 std::uint32_t n, unsigned devices)
{
    ASSERT_EQ(blocks.size(), devices);
    std::uint32_t next = 0;
    bool tail_idle = false;
    for (const RowBlock &b : blocks) {
        if (b.idle()) {
            tail_idle = true;
            continue;
        }
        ASSERT_FALSE(tail_idle)
            << "live block after an idle one";
        EXPECT_EQ(b.begin, next);
        next += b.rows;
    }
    EXPECT_EQ(next, n);
}

} // namespace

TEST(ShardPlanner, RemainderLandsOnTheLastLiveBlock)
{
    // 10 rows over 4 devices: ceil(10/4) = 3 per block, the last
    // live block takes the remainder 1.
    const auto blocks = ShardPlanner::partitionRows(10, 4);
    expectExactCover(blocks, 10, 4);
    EXPECT_EQ(blocks[0].begin, 0u);
    EXPECT_EQ(blocks[0].rows, 3u);
    EXPECT_EQ(blocks[1].begin, 3u);
    EXPECT_EQ(blocks[1].rows, 3u);
    EXPECT_EQ(blocks[2].begin, 6u);
    EXPECT_EQ(blocks[2].rows, 3u);
    EXPECT_EQ(blocks[3].begin, 9u);
    EXPECT_EQ(blocks[3].rows, 1u);
}

TEST(ShardPlanner, EvenSplitFillsEveryDevice)
{
    const auto blocks = ShardPlanner::partitionRows(8, 4);
    expectExactCover(blocks, 8, 4);
    for (unsigned d = 0; d < 4; ++d) {
        EXPECT_EQ(blocks[d].begin, d * 2u);
        EXPECT_EQ(blocks[d].rows, 2u);
    }
}

TEST(ShardPlanner, FewerRowsThanDevicesIdlesTheTail)
{
    // 3 rows over 8 devices: ceil(3/8) = 1 row per block, devices
    // 3..7 idle.
    const auto blocks = ShardPlanner::partitionRows(3, 8);
    expectExactCover(blocks, 3, 8);
    for (unsigned d = 0; d < 3; ++d) {
        EXPECT_EQ(blocks[d].begin, d);
        EXPECT_EQ(blocks[d].rows, 1u);
    }
    for (unsigned d = 3; d < 8; ++d)
        EXPECT_TRUE(blocks[d].idle());
}

TEST(ShardPlanner, SingleRowUsesExactlyOneDevice)
{
    const auto blocks = ShardPlanner::partitionRows(1, 4);
    expectExactCover(blocks, 1, 4);
    EXPECT_EQ(blocks[0].rows, 1u);
    for (unsigned d = 1; d < 4; ++d)
        EXPECT_TRUE(blocks[d].idle());
}

TEST(ShardPlanner, OneDeviceTakesEverything)
{
    const auto blocks = ShardPlanner::partitionRows(37, 1);
    expectExactCover(blocks, 37, 1);
    EXPECT_EQ(blocks[0].begin, 0u);
    EXPECT_EQ(blocks[0].rows, 37u);
}

TEST(ShardPlanner, ZeroRowsYieldsAllIdleBlocks)
{
    const auto blocks = ShardPlanner::partitionRows(0, 4);
    ASSERT_EQ(blocks.size(), 4u);
    for (const RowBlock &b : blocks)
        EXPECT_TRUE(b.idle());
}

TEST(ShardPlanner, ExactCoverAcrossShapesAndFleets)
{
    for (std::uint32_t n : {1u, 2u, 5u, 31u, 32u, 33u, 97u, 256u})
        for (unsigned devices : {1u, 2u, 3u, 4u, 7u, 8u, 64u}) {
            SCOPED_TRACE(testing::Message()
                         << "n=" << n << " devices=" << devices);
            expectExactCover(
                ShardPlanner::partitionRows(n, devices), n,
                devices);
        }
}

TEST(ShardPlanner, MatmulPlanCarriesShapeAndByteCounts)
{
    const ShardPlanner planner(4);
    const MatmulShardPlan plan = planner.planMatmul(10, 6, 5);
    EXPECT_EQ(plan.n, 10u);
    EXPECT_EQ(plan.k, 6u);
    EXPECT_EQ(plan.m, 5u);
    EXPECT_EQ(plan.activeDevices(), 4u);
    EXPECT_EQ(plan.bBytes(), 30u);
    EXPECT_EQ(plan.aBytes(0), 18u); // 3 rows x 6
    EXPECT_EQ(plan.aBytes(3), 6u);  // remainder row x 6
    EXPECT_EQ(plan.cBytes(0), 15u); // 3 rows x 5
    EXPECT_EQ(plan.cBytes(3), 5u);
    std::uint64_t a_total = 0, c_total = 0;
    for (unsigned d = 0; d < 4; ++d) {
        a_total += plan.aBytes(d);
        c_total += plan.cBytes(d);
    }
    EXPECT_EQ(a_total, 60u); // the whole A, exactly once
    EXPECT_EQ(c_total, 50u); // the whole C, exactly once
}

TEST(ShardPlanner, ElementwisePlanCountsActiveDevices)
{
    const ShardPlanner planner(8);
    const ElementwiseShardPlan plan = planner.planElementwise(3);
    EXPECT_EQ(plan.elements, 3u);
    EXPECT_EQ(plan.activeDevices(), 3u);
    expectExactCover(plan.blocks, 3, 8);
}
