#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/conflict_graph.hh"

using namespace streampim;

namespace
{

std::uint64_t
bit(unsigned i)
{
    return std::uint64_t(1) << i;
}

} // namespace

TEST(ConflictGraph, EmptyStream)
{
    ConflictGraph g(std::vector<std::uint64_t>{});
    EXPECT_EQ(g.size(), 0u);
    EXPECT_TRUE(g.roots().empty());
    EXPECT_EQ(g.edges(), 0u);
}

TEST(ConflictGraph, DisjointMasksAreAllRoots)
{
    const std::vector<std::uint64_t> masks = {bit(0), bit(1), bit(2),
                                              bit(3)};
    ConflictGraph g(masks);
    EXPECT_EQ(g.edges(), 0u);
    EXPECT_EQ(g.roots(),
              (std::vector<std::uint32_t>{0, 1, 2, 3}));
    for (std::size_t i = 0; i < masks.size(); ++i) {
        EXPECT_EQ(g.predecessors(i), 0u);
        EXPECT_TRUE(g.successors(i).empty());
    }
}

TEST(ConflictGraph, SameResourceChainsInStreamOrder)
{
    const std::vector<std::uint64_t> masks = {bit(2), bit(2),
                                              bit(2)};
    ConflictGraph g(masks);
    EXPECT_EQ(g.roots(), (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(g.successors(0), (std::vector<std::uint32_t>{1}));
    EXPECT_EQ(g.successors(1), (std::vector<std::uint32_t>{2}));
    EXPECT_TRUE(g.successors(2).empty());
    EXPECT_EQ(g.predecessors(1), 1u);
    EXPECT_EQ(g.predecessors(2), 1u);
    EXPECT_EQ(g.edges(), 2u);
}

TEST(ConflictGraph, TranStyleMaskFormsDiamond)
{
    // 0 and 1 touch disjoint subarrays; 2 (a TRAN 0->1) touches
    // both; 3 touches only subarray 1 and must wait for the TRAN.
    const std::vector<std::uint64_t> masks = {
        bit(0), bit(1), bit(0) | bit(1), bit(1)};
    ConflictGraph g(masks);
    EXPECT_EQ(g.roots(), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(g.successors(0), (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(g.successors(1), (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(g.predecessors(2), 2u);
    EXPECT_EQ(g.successors(2), (std::vector<std::uint32_t>{3}));
    EXPECT_EQ(g.predecessors(3), 1u);
    EXPECT_EQ(g.edges(), 3u);
}

TEST(ConflictGraph, SharedPredecessorCountedOnce)
{
    // Task 1 overlaps task 0 on two resources: one edge, not two.
    const std::vector<std::uint64_t> masks = {bit(0) | bit(1),
                                              bit(0) | bit(1)};
    ConflictGraph g(masks);
    EXPECT_EQ(g.predecessors(1), 1u);
    EXPECT_EQ(g.successors(0), (std::vector<std::uint32_t>{1}));
    EXPECT_EQ(g.edges(), 1u);
}

TEST(ConflictGraph, DependsOnLatestUserOnly)
{
    // 0 and 1 both touch bit 0; 2 touches bit 0 and must depend on
    // 1 (the latest user), not on 0.
    const std::vector<std::uint64_t> masks = {bit(0), bit(0),
                                              bit(0)};
    ConflictGraph g(masks);
    EXPECT_EQ(g.successors(0), (std::vector<std::uint32_t>{1}));
    EXPECT_EQ(g.successors(1), (std::vector<std::uint32_t>{2}));
}

TEST(ConflictGraph, BarrierMaskSerializesEverything)
{
    // An all-ones mask in the middle orders against every earlier
    // task and every later task — a host read/write barrier.
    const std::vector<std::uint64_t> masks = {
        bit(0), bit(5), ~std::uint64_t(0), bit(0), bit(63)};
    ConflictGraph g(masks);
    EXPECT_EQ(g.roots(), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(g.predecessors(2), 2u);
    EXPECT_EQ(g.successors(2),
              (std::vector<std::uint32_t>{3, 4}));
    EXPECT_EQ(g.predecessors(3), 1u);
    EXPECT_EQ(g.predecessors(4), 1u);
}

TEST(ConflictGraph, WideMasksTrackResourcesPastSixtyFour)
{
    // 3 words per task = up to 192 resources. Tasks 0 and 1 touch
    // resources 65 and 130 — both beyond what a single 64-bit mask
    // can express; task 2 touches both and must depend on each.
    auto task = [](unsigned r) {
        std::vector<std::uint64_t> w(3, 0);
        w[r / 64] = bit(r % 64);
        return w;
    };
    std::vector<std::uint64_t> words;
    for (const auto &t : {task(65), task(130)})
        words.insert(words.end(), t.begin(), t.end());
    words.insert(words.end(), {0, bit(1), bit(2)}); // 65 and 130

    ConflictGraph g(words, 3);
    ASSERT_EQ(g.size(), 3u);
    EXPECT_EQ(g.roots(), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(g.predecessors(2), 2u);
    EXPECT_EQ(g.successors(0), (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(g.successors(1), (std::vector<std::uint32_t>{2}));
}

TEST(ConflictGraph, WideMasksSeparateSameBitDifferentWord)
{
    // Bit 3 of word 0 (resource 3) and bit 3 of word 1 (resource
    // 67) are distinct resources: no dependency between their
    // users. A buggy cap-at-64 fold would alias them.
    const std::vector<std::uint64_t> words = {
        bit(3), 0, // task 0: resource 3
        0, bit(3), // task 1: resource 67
        bit(3), 0, // task 2: resource 3 again
    };
    ConflictGraph g(words, 2);
    ASSERT_EQ(g.size(), 3u);
    EXPECT_EQ(g.roots(), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(g.predecessors(2), 1u);
    EXPECT_EQ(g.successors(0), (std::vector<std::uint32_t>{2}));
    EXPECT_TRUE(g.successors(1).empty());
}

TEST(ConflictGraph, WideAndNarrowAgreeAtOneWordPerTask)
{
    const std::vector<std::uint64_t> masks = {
        bit(0) | bit(1), bit(1) | bit(2), bit(0), bit(2) | bit(3),
        ~std::uint64_t(0), bit(63)};
    ConflictGraph narrow(masks);
    ConflictGraph wide(masks, 1);
    ASSERT_EQ(narrow.size(), wide.size());
    EXPECT_EQ(narrow.edges(), wide.edges());
    EXPECT_EQ(narrow.roots(), wide.roots());
    for (std::size_t i = 0; i < masks.size(); ++i) {
        EXPECT_EQ(narrow.predecessors(i), wide.predecessors(i));
        EXPECT_EQ(narrow.successors(i), wide.successors(i));
    }
}

TEST(ConflictGraph, ChainAcrossSixtyFivePlusResources)
{
    // 65+ single-resource tasks, each on its own resource: all
    // roots, no edges — then one full-mask task serializes against
    // every live resource user.
    const std::size_t words_per = 2; // 128 resources
    std::vector<std::uint64_t> words;
    const unsigned resources = 70;
    for (unsigned r = 0; r < resources; ++r) {
        std::vector<std::uint64_t> w(words_per, 0);
        w[r / 64] = bit(r % 64);
        words.insert(words.end(), w.begin(), w.end());
    }
    words.insert(words.end(),
                 {~std::uint64_t(0), ~std::uint64_t(0)});
    ConflictGraph g(words, words_per);
    ASSERT_EQ(g.size(), resources + 1);
    EXPECT_EQ(g.roots().size(), resources);
    EXPECT_EQ(g.predecessors(resources), resources);
    EXPECT_EQ(g.edges(), resources);
}

TEST(ConflictGraph, SubmitOrderIsATopologicalOrder)
{
    // Every edge must point forward in stream order.
    const std::vector<std::uint64_t> masks = {
        bit(0) | bit(1), bit(1) | bit(2), bit(0), bit(2) | bit(3),
        bit(3), bit(1), ~std::uint64_t(0), bit(4)};
    ConflictGraph g(masks);
    for (std::size_t i = 0; i < masks.size(); ++i)
        for (std::uint32_t s : g.successors(i))
            EXPECT_GT(s, i);
    // Edge/predecessor accounting is consistent.
    std::uint64_t pred_total = 0, succ_total = 0;
    for (std::size_t i = 0; i < masks.size(); ++i) {
        pred_total += g.predecessors(i);
        succ_total += g.successors(i).size();
    }
    EXPECT_EQ(pred_total, g.edges());
    EXPECT_EQ(succ_total, g.edges());
}
