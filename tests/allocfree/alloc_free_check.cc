/**
 * @file
 * Zero-allocation regression harness for the hot path.
 *
 * A separate executable (not part of streampim_tests): it overrides
 * the global operator new/delete to count heap allocations, which
 * would distort the gtest binary. The checks pin the PR's
 * steady-state contracts:
 *
 *  1. BitVec resize churn: shrinking and regrowing within the
 *     largest size ever reached never reallocates.
 *  2. RmProcessor packed fast paths: warm dot-product / smul / add
 *     calls through the Into APIs allocate nothing.
 *  3. StreamPimSystem::processQueueInto: a warm serial (jobs == 1)
 *     drain of a same-shaped VPC batch allocates nothing — across
 *     the decoder, staging arena, segmented bus, mats and
 *     processor.
 *
 * Exit code 0 when every check holds; prints the failing counter
 * otherwise. Runs under both SIMD backends when available.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "common/bitvec.hh"
#include "common/simd.hh"
#include "core/stream_pim.hh"
#include "dwlogic/mode.hh"
#include "processor/rm_processor.hh"

namespace
{

std::uint64_t g_allocs = 0;
std::uint64_t g_bytes = 0;

} // namespace

void *
operator new(std::size_t n)
{
    g_allocs++;
    g_bytes += n;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace streampim;

int g_failures = 0;

#define CHECK_ZERO_ALLOCS(what, expr)                                 \
    do {                                                              \
        const std::uint64_t before = g_allocs;                        \
        expr;                                                         \
        const std::uint64_t after = g_allocs;                         \
        if (after != before) {                                        \
            std::printf("FAIL %s: %llu allocations (expected 0)\n",   \
                        what,                                         \
                        (unsigned long long)(after - before));        \
            g_failures++;                                             \
        } else {                                                      \
            std::printf("ok   %s: 0 allocations\n", what);            \
        }                                                             \
    } while (0)

void
checkBitVecResizeChurn()
{
    // Reach the high-water mark once, then churn: no reallocation.
    BitVec v(1024);
    for (unsigned i = 0; i < 1024; i += 7)
        v.set(i, true);
    CHECK_ZERO_ALLOCS("bitvec resize churn", {
        for (int round = 0; round < 100; ++round) {
            v.resize(8);
            v.resize(777);
            v.resize(1024);
            v.resize(64);
            v.resize(1024);
        }
    });
}

void
checkProcessorFastPaths(const char *label)
{
    RmParams params;
    EnergyMeter meter;
    RmProcessor proc(params, meter);
    std::uint8_t a[64], b[64];
    for (unsigned i = 0; i < 64; ++i) {
        a[i] = std::uint8_t(i * 37 + 11);
        b[i] = std::uint8_t(i * 101 + 3);
    }
    ProcessorResult res;
    // Warm-up: grows the result buffers to their steady size.
    proc.dotProductInto(a, b, res);
    proc.scalarVectorMulInto(7, a, res);
    proc.vectorAddInto(a, b, res);

    char what[96];
    std::snprintf(what, sizeof(what), "processor fast paths (%s)",
                  label);
    CHECK_ZERO_ALLOCS(what, {
        for (int round = 0; round < 50; ++round) {
            proc.dotProductInto(a, b, res);
            proc.scalarVectorMulInto(7, a, res);
            proc.vectorAddInto(a, b, res);
        }
    });
}

void
checkProcessQueueSteadyState(const char *label)
{
    StreamPimSystem sys;
    const std::uint64_t per = sys.params().bytesPerSubarray();

    std::uint8_t data[64];
    for (unsigned i = 0; i < 64; ++i)
        data[i] = std::uint8_t(i + 1);
    sys.write(0, data);
    sys.write(64, data);
    sys.write(per, data); // remote operand for the cross-subarray VPC

    auto submitBatch = [&] {
        // Local dot product, local add, cross-subarray smul with a
        // remote destination, and a TRAN — the full executeOne
        // surface.
        sys.submit({VpcKind::Mul, 0, 64, 128, 64});
        sys.submit({VpcKind::Add, 0, 64, 192, 64});
        sys.submit({VpcKind::Smul, 0, per, per + 128, 64});
        sys.submit({VpcKind::Tran, 0, 0, per + 512, 64});
    };

    std::vector<VpcExecutionRecord> records;
    // Warm-up: grows every scratch buffer, arena and ring to its
    // steady-state high-water mark.
    for (int i = 0; i < 3; ++i) {
        submitBatch();
        sys.processQueueInto(records, 1);
    }

    char what[96];
    std::snprintf(what, sizeof(what),
                  "processQueue steady state (%s)", label);
    CHECK_ZERO_ALLOCS(what, {
        for (int round = 0; round < 20; ++round) {
            submitBatch();
            sys.processQueueInto(records, 1);
        }
    });
}

} // namespace

int
main()
{
    // The zero-allocation contract covers the packed fast path only;
    // the strict gate netlist allocates freely by design. Pin packed
    // mode so the check stays meaningful under a CI-wide
    // STREAMPIM_STRICT_GATES=1 run.
    ScopedStrictGates packed(false);

    checkBitVecResizeChurn();

    {
        simd::ScopedBackend scalar(simd::Backend::Scalar);
        checkProcessorFastPaths("scalar");
        checkProcessQueueSteadyState("scalar");
    }
    if (simd::avx2Supported()) {
        simd::ScopedBackend avx2(simd::Backend::Avx2);
        checkProcessorFastPaths("avx2");
        checkProcessQueueSteadyState("avx2");
    }

    if (g_failures == 0)
        std::printf("all zero-allocation checks passed\n");
    return g_failures == 0 ? 0 : 1;
}
