/**
 * @file
 * Integration: the cycle-stepped pipeline (processor/pipeline.hh)
 * must agree with the closed-form ProcessorTiming model that the
 * fast executor uses — in both cycle counts and computed values.
 * This is the validation DESIGN.md promises for the two-level
 * fidelity scheme.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "processor/pipeline.hh"
#include "processor/rm_processor.hh"

namespace streampim
{
namespace
{

RmParams
withDuplicators(unsigned d)
{
    RmParams p;
    p.duplicators = d;
    return p;
}

TEST(PipelineTiming, SingleElementLatencyEqualsDepth)
{
    RmParams p = withDuplicators(2);
    DotPipeline pipe(p);
    pipe.feed(3, 5);
    pipe.drain();
    ProcessorTiming t(p);
    EXPECT_EQ(pipe.lastRetireCycle(), t.dotProductCycles(1));
    EXPECT_EQ(pipe.accumulator(), 15u);
}

/** The key property: for any stream length and duplicator count,
 * the stepped pipeline retires its last element exactly at the
 * closed-form dotProductCycles(n). */
class PipelineVsClosedForm
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(PipelineVsClosedForm, LastRetireMatches)
{
    auto [n, dups] = GetParam();
    RmParams p = withDuplicators(dups);
    DotPipeline pipe(p);
    Rng rng(n * 7 + dups);
    std::uint32_t expect = 0;
    for (unsigned i = 0; i < n; ++i) {
        auto a = std::uint8_t(rng.below(256));
        auto b = std::uint8_t(rng.below(256));
        pipe.feed(a, b);
        expect += std::uint32_t(a) * b;
    }
    pipe.drain();
    ProcessorTiming t(p);
    EXPECT_EQ(pipe.lastRetireCycle(), t.dotProductCycles(n))
        << "n=" << n << " duplicators=" << dups;
    EXPECT_EQ(pipe.accumulator(), expect);
    EXPECT_EQ(pipe.retired().size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    StreamGrid, PipelineVsClosedForm,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u, 17u, 64u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(PipelineTiming, ElementsRetireInOrderAtIIRate)
{
    RmParams p = withDuplicators(2);
    DotPipeline pipe(p);
    for (int i = 0; i < 10; ++i)
        pipe.feed(std::uint8_t(i), 1);
    pipe.drain();
    ProcessorTiming t(p);
    const auto &retired = pipe.retired();
    ASSERT_EQ(retired.size(), 10u);
    for (std::size_t i = 0; i < retired.size(); ++i) {
        EXPECT_EQ(retired[i].product, i);
        if (i > 0) {
            EXPECT_EQ(retired[i].retiredAt - retired[i - 1].retiredAt,
                      t.multiplyII());
        }
    }
}

TEST(PipelineTiming, BitAccurateProcessorAgreesWithPipeline)
{
    // Third leg of the triangle: RmProcessor (dwlogic-based) and
    // DotPipeline (stage-stepped) must produce identical values and
    // report identical cycle counts.
    RmParams p = withDuplicators(2);
    EnergyMeter meter;
    RmProcessor proc(p, meter);
    DotPipeline pipe(p);

    Rng rng(99);
    std::vector<std::uint8_t> a(25), b(25);
    for (unsigned i = 0; i < 25; ++i) {
        a[i] = std::uint8_t(rng.below(256));
        b[i] = std::uint8_t(rng.below(256));
        pipe.feed(a[i], b[i]);
    }
    pipe.drain();
    auto r = proc.dotProduct(a, b);
    EXPECT_EQ(pipe.accumulator(), r.values.at(0));
    EXPECT_EQ(pipe.lastRetireCycle(), r.cycles);
}

TEST(PipelineTiming, FeedWhileRunning)
{
    // Elements fed mid-flight still respect the admission rate.
    RmParams p = withDuplicators(2);
    DotPipeline pipe(p);
    pipe.feed(1, 1);
    for (int i = 0; i < 3; ++i)
        pipe.step();
    pipe.feed(2, 2);
    pipe.drain();
    EXPECT_EQ(pipe.accumulator(), 1u + 4u);
}

TEST(PipelineTimingDeath, LastRetireBeforeAnyRetirePanics)
{
    RmParams p = withDuplicators(2);
    DotPipeline pipe(p);
    EXPECT_DEATH(pipe.lastRetireCycle(), "nothing retired");
}

} // namespace
} // namespace streampim
