/**
 * @file
 * Cross-validation: the fast busy-until sweep Executor and the
 * independent max-plus/event reference executor must produce
 * tick-identical makespans on planner schedules and on randomly
 * generated ones.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/event_executor.hh"
#include "core/executor.hh"
#include "runtime/planner.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

void
expectIdentical(const SystemConfig &cfg, const VpcSchedule &s,
                const char *what)
{
    Executor fast(cfg);
    EventExecutor reference(cfg);
    ExecutionReport a = fast.run(s);
    EventExecutionResult b = reference.run(s);
    EXPECT_EQ(a.makespan, b.makespan) << what;
}

TEST(ExecutorCrossValidation, PlannerSchedulesAllKernelsAllLevels)
{
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.optLevel = level;
        Planner p(cfg);
        for (PolybenchKernel k : allPolybenchKernels()) {
            VpcSchedule s = p.plan(makePolybench(k, 48));
            expectIdentical(cfg, s, polybenchName(k));
        }
    }
}

TEST(ExecutorCrossValidation, ElectricalBusSchedules)
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.busType = BusType::Electrical;
    Planner p(cfg);
    VpcSchedule s =
        p.plan(makePolybench(PolybenchKernel::Gemm, 64));
    expectIdentical(cfg, s, "gemm electrical");
}

/**
 * The planner's dependency wiring for chained ops: the second
 * matmul consumes a produced B, so its gathers carry depA pointing
 * at the first op's final collect, and both executors must agree on
 * the resulting timing at the levels where assembly happens.
 */
TEST(ExecutorCrossValidation, ChainedMatMulProducedBAssembly)
{
    TaskGraph g;
    auto a0 = g.addMatrix("A0", 40, 40);
    auto b0 = g.addMatrix("B0", 40, 40);
    auto b1 = g.addMatrix("B1", 40, 40);
    auto a1 = g.addMatrix("A1", 40, 40);
    auto c = g.addMatrix("C", 40, 40);
    g.addOp(MatOpKind::MatMul, a0, b0, b1);
    g.addOp(MatOpKind::MatMul, a1, b1, c);

    for (OptLevel level : {OptLevel::Distribute, OptLevel::Unblock}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.optLevel = level;
        Planner p(cfg);
        VpcSchedule s = p.plan(g);
        expectIdentical(cfg, s, optLevelName(level));
    }
}

/**
 * Element-wise vector chains: the adds carry both copy
 * dependencies (depA and depB) after the planner fix; both
 * executors must process the dual-dependency batches identically.
 */
TEST(ExecutorCrossValidation, VectorAddChainsWithDualCopyDeps)
{
    TaskGraph g;
    auto x = g.addMatrix("x", 3000, 1);
    auto y = g.addMatrix("y", 3000, 1);
    auto z = g.addMatrix("z", 3000, 1);
    auto w = g.addMatrix("w", 3000, 1);
    g.addOp(MatOpKind::MatAdd, x, y, z);
    g.addOp(MatOpKind::MatAdd, z, x, w);

    for (OptLevel level : {OptLevel::Distribute, OptLevel::Unblock}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.optLevel = level;
        Planner p(cfg);
        VpcSchedule s = p.plan(g);
        expectIdentical(cfg, s, optLevelName(level));
    }
}

/** Random schedule generator: arbitrary kinds, subarrays, batched
 * counts, backward dependencies and occasional barriers. */
VpcSchedule
randomSchedule(Rng &rng, const SystemConfig &cfg, unsigned batches)
{
    VpcSchedule s;
    for (unsigned i = 0; i < batches; ++i) {
        VpcBatch b;
        switch (rng.below(4)) {
          case 0: b.kind = VpcKind::Mul; break;
          case 1: b.kind = VpcKind::Smul; break;
          case 2: b.kind = VpcKind::Add; break;
          default: b.kind = VpcKind::Tran; break;
        }
        b.subarray =
            std::uint32_t(rng.below(cfg.rm.totalSubarrays()));
        b.dstSubarray =
            std::uint32_t(rng.below(cfg.rm.totalSubarrays()));
        b.vpcCount = 1 + std::uint32_t(rng.below(8));
        b.vectorLen = 1 + std::uint32_t(rng.below(300));
        if (i > 0 && rng.below(3) == 0)
            b.depA = std::uint32_t(rng.below(i));
        if (i > 1 && rng.below(5) == 0)
            b.depB = std::uint32_t(rng.below(i));
        b.barrier = rng.below(16) == 0;
        s.push(b);
    }
    return s;
}

class RandomScheduleSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RandomScheduleSweep, SweepMatchesReference)
{
    Rng rng(GetParam() * 7919 + 13);
    for (OptLevel level : {OptLevel::Distribute, OptLevel::Unblock}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.optLevel = level;
        VpcSchedule s = randomSchedule(rng, cfg, 200);
        Executor fast(cfg);
        EventExecutor reference(cfg);
        ExecutionReport a = fast.run(s);
        EventExecutionResult b = reference.run(s);
        ASSERT_EQ(a.makespan, b.makespan)
            << "seed " << GetParam() << " level "
            << optLevelName(level);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleSweep,
                         ::testing::Range(0u, 12u));

TEST(ExecutorCrossValidation, BatchCompletionTimesAgree)
{
    // Beyond the makespan: per-batch completion times must match,
    // which pins the internal resource interleavings.
    SystemConfig cfg = SystemConfig::paperDefault();
    Rng rng(424242);
    VpcSchedule s = randomSchedule(rng, cfg, 64);
    EventExecutor reference(cfg);
    EventExecutionResult ref = reference.run(s);

    // Re-run through the sweep executor batch prefix by prefix: the
    // makespan of the first k batches equals the max completion of
    // those batches in the reference run.
    Executor fast(cfg);
    for (std::size_t k : {std::size_t(1), s.batches.size() / 2,
                          s.batches.size()}) {
        VpcSchedule prefix;
        prefix.batches.assign(s.batches.begin(),
                              s.batches.begin() + k);
        Tick expect = 0;
        for (std::size_t i = 0; i < k; ++i)
            expect = std::max(expect, ref.batchDone[i]);
        EXPECT_EQ(fast.run(prefix).makespan, expect) << k;
    }
}

} // namespace
} // namespace streampim
