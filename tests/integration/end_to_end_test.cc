/**
 * @file
 * End-to-end integration: the functional device, the PimTask
 * runtime, and the timed executor must tell one consistent story.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/stream_pim.hh"
#include "runtime/pim_task.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

TEST(EndToEnd, FunctionalDeviceAndPimTaskAgreeOnMatVec)
{
    // Compute y = A*x twice: once through the PimTask runtime, once
    // by issuing raw dot-product VPCs to the functional device, and
    // compare element by element.
    const unsigned rows = 8, cols = 16;
    Rng rng(12);
    std::vector<std::uint8_t> a(rows * cols), x(cols);
    for (auto &v : a)
        v = std::uint8_t(rng.below(16));
    for (auto &v : x)
        v = std::uint8_t(rng.below(16));

    // Path 1: PimTask.
    std::vector<std::uint8_t> y_task(rows);
    {
        std::vector<std::uint8_t> a_copy = a, x_copy = x;
        PimTask task;
        auto ma = task.addMatrix(a_copy.data(), rows, cols);
        auto mx = task.addMatrix(x_copy.data(), cols, 1);
        auto my = task.addMatrix(y_task.data(), rows, 1);
        task.addOperation(MatOpKind::MatVec, ma, mx, my);
        task.run();
    }

    // Path 2: raw VPCs on the functional device, one MUL per row.
    StreamPimSystem device;
    device.write(0, a);
    device.write(4096, x);
    for (unsigned r = 0; r < rows; ++r)
        device.submit({VpcKind::Mul, Addr(r) * cols, 4096,
                       8192 + Addr(r) * 4, cols});
    device.processQueue();

    for (unsigned r = 0; r < rows; ++r) {
        auto bytes = device.read(8192 + Addr(r) * 4, 4);
        // PimTask stores the truncated low byte; compare there.
        EXPECT_EQ(bytes[0], y_task[r]) << "row " << r;
    }
}

TEST(EndToEnd, TimedBatchesAreConsistentWithPipelineModel)
{
    // The executor charges a MUL batch exactly the cycles the
    // validated pipeline model predicts (plus the bus fill), so a
    // one-batch schedule's makespan is fully explained.
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.vpcIssueTicks = 0;
    Executor ex(cfg);
    RmBusTiming bus(cfg.rm);
    ProcessorTiming timing(cfg.rm);
    ClockDomain clk(cfg.rm.coreFreqHz);

    for (std::uint32_t len : {1u, 10u, 256u, 2000u}) {
        VpcSchedule s;
        VpcBatch b;
        b.kind = VpcKind::Mul;
        b.subarray = 0;
        b.vpcCount = 1;
        b.vectorLen = len;
        s.push(b);
        Tick makespan = ex.run(s).makespan;
        Tick expect = clk.cyclesToTicks(
            timing.dotProductCycles(len) + bus.segmentCount());
        EXPECT_EQ(makespan, expect) << "len " << len;
    }
}

TEST(EndToEnd, SpeedupShapeSurvivesSmallScale)
{
    // Even at tiny dimensions, the architectural orderings that
    // make the paper's figures must hold: unblock > distribute >
    // base, and StPIM > StPIM-e.
    TaskGraph g = makePolybench(PolybenchKernel::Atax, 128);
    auto seconds_for = [&](OptLevel level, BusType bus_type) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.optLevel = level;
        cfg.busType = bus_type;
        Planner p(cfg);
        Executor e(cfg);
        return ticksToSeconds(e.run(p.plan(g)).makespan);
    };
    double base = seconds_for(OptLevel::Base, BusType::RmBus);
    double dist = seconds_for(OptLevel::Distribute, BusType::RmBus);
    double unb = seconds_for(OptLevel::Unblock, BusType::RmBus);
    double unb_e =
        seconds_for(OptLevel::Unblock, BusType::Electrical);
    EXPECT_GT(base, dist);
    EXPECT_GT(dist, unb);
    EXPECT_GT(unb_e, unb);
}

TEST(EndToEnd, EnergyStoryMatchesFig20Shape)
{
    // StreamPIM's transfer energy share must sit well below
    // CORUSCANT-style conversion-dominated shares even at small
    // scale.
    SystemConfig cfg = SystemConfig::paperDefault();
    Planner p(cfg);
    Executor e(cfg);
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 256);
    ExecutionReport r = e.run(p.plan(g));
    const auto &en = r.energy;
    double transfer = en.energyPj(EnergyOp::RmRead) +
                      en.energyPj(EnergyOp::RmWrite) +
                      en.energyPj(EnergyOp::RmShift) +
                      en.energyPj(EnergyOp::BusShift);
    double frac = transfer / en.totalPj();
    EXPECT_LT(frac, 0.8);
    EXPECT_GT(frac, 0.05);
}

TEST(EndToEnd, TableIvCountsAtPaperDim)
{
    // The exactly-reproduced Table IV entries (see EXPERIMENTS.md):
    // gemm 4.61e6, syrk 6.77e6, atax 4.00e3 PIM VPCs.
    SystemConfig cfg = SystemConfig::paperDefault();
    Planner p(cfg);
    // atax: exactly 1900 + 2100 dot products (paper: 4.00e3).
    EXPECT_EQ(p.plan(makePolybench(PolybenchKernel::Atax, 2000))
                  .pimVpcs(),
              4000u);
    // gemm: dominated by NI x NJ = 4.6e6 dots (paper: 4.61e6).
    std::uint64_t gemm =
        p.plan(makePolybench(PolybenchKernel::Gemm, 2000)).pimVpcs();
    EXPECT_GE(gemm, 4'600'000u);
    EXPECT_LE(gemm, 4'650'000u);
}

} // namespace
} // namespace streampim
