#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "parallel/sweep.hh"
#include "parallel/thread_pool.hh"

using namespace streampim;

namespace
{

SweepRunner
makeGrid(int argc = 0, const char *const *argv = nullptr)
{
    SweepRunner sweep("unit_grid", argc, argv);
    for (const char *row : {"atax", "bicg"})
        for (const char *col : {"StPIM", "CORUSCANT"}) {
            std::string r = row, c = col;
            sweep.add(r, c, [r, c] {
                SweepCellResult res;
                res.value = double(r.size()) * double(c.size());
                res.metrics["rows"] = double(r.size());
                return res;
            });
        }
    return sweep;
}

} // namespace

TEST(SweepRunner, RunsCellsAndKeepsDeclarationOrder)
{
    SweepRunner sweep = makeGrid();
    sweep.run();
    EXPECT_EQ(sweep.rows(),
              (std::vector<std::string>{"atax", "bicg"}));
    EXPECT_EQ(sweep.cols(),
              (std::vector<std::string>{"StPIM", "CORUSCANT"}));
    EXPECT_DOUBLE_EQ(sweep.value("atax", "StPIM"), 4.0 * 5.0);
    EXPECT_DOUBLE_EQ(sweep.value("bicg", "CORUSCANT"), 4.0 * 9.0);
    EXPECT_EQ(sweep.columnValues("StPIM"),
              (std::vector<double>{20.0, 20.0}));
}

TEST(SweepRunner, FindCellReturnsNullForUndeclaredPair)
{
    SweepRunner sweep = makeGrid();
    sweep.run();
    EXPECT_NE(sweep.findCell("atax", "StPIM"), nullptr);
    EXPECT_EQ(sweep.findCell("atax", "NoSuchCol"), nullptr);
    EXPECT_EQ(sweep.findCell("nope", "StPIM"), nullptr);
}

TEST(SweepRunnerDeath, UndeclaredCellExitsWithDiagnostic)
{
    // cell() on a never-declared (row, col) must exit nonzero with
    // a message naming the bench and the missing coordinates — not
    // abort mid-report.
    SweepRunner sweep = makeGrid();
    sweep.run();
    EXPECT_EXIT(sweep.cell("atax", "NoSuchCol"),
                ::testing::ExitedWithCode(1),
                "SweepRunner\\(unit_grid\\): no cell \\(atax, "
                "NoSuchCol\\)");
}

TEST(SweepRunner, CellsMayRunOnOtherThreads)
{
    // Smoke-test the concurrency path: many slow-ish cells, results
    // still land in their own slots.
    SweepRunner sweep("unit_threads");
    for (int i = 0; i < 32; ++i)
        sweep.add("r" + std::to_string(i), "c", [i] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
            return SweepCellResult{double(i), {}};
        });
    sweep.run();
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(
            sweep.value("r" + std::to_string(i), "c"), double(i));
}

TEST(SweepRunner, ReportNotRequestedByDefault)
{
    SweepRunner sweep("unit_noreport");
    EXPECT_FALSE(sweep.reportRequested());
    sweep.add("r", "c", [] { return SweepCellResult{1.0, {}}; });
    sweep.run();
    EXPECT_FALSE(sweep.writeReport());
}

TEST(SweepRunner, WritesParsableJsonReport)
{
    // Relative path: lands in the ctest working directory.
    const char *path = "BENCH_unit_grid.json";
    const char *argv[] = {"bench", "--json", path};
    SweepRunner sweep = makeGrid(3, argv);
    ASSERT_TRUE(sweep.reportRequested());
    EXPECT_EQ(sweep.reportPath(), path);
    sweep.run();
    sweep.note("paper_mean", 39.1);
    sweep.note("shape", "StPIM > CORUSCANT");
    ASSERT_TRUE(sweep.writeReport());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    Json doc = Json::parse(buf.str(), &err);
    ASSERT_TRUE(err.empty()) << err;

    // Versioned shape: tooling diffing reports keys off this field.
    ASSERT_NE(doc.find("schema_version"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("schema_version")->asNumber(),
                     double(kBenchReportSchemaVersion));
    EXPECT_EQ(doc.find("bench")->asString(), "unit_grid");
    EXPECT_GE(doc.find("jobs")->asNumber(), 1.0);
    EXPECT_GE(doc.find("wall_seconds")->asNumber(), 0.0);
    ASSERT_NE(doc.find("config"), nullptr);
    ASSERT_NE(doc.find("config")->find("dim"), nullptr);

    const Json *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->size(), 4u);
    // Declaration order is preserved in the report.
    EXPECT_EQ(cells->at(0).find("row")->asString(), "atax");
    EXPECT_EQ(cells->at(0).find("col")->asString(), "StPIM");
    EXPECT_DOUBLE_EQ(cells->at(0).find("value")->asNumber(), 20.0);
    EXPECT_GE(cells->at(0).find("seconds")->asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(
        cells->at(0).find("metrics")->find("rows")->asNumber(),
        4.0);

    const Json *summary = doc.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_DOUBLE_EQ(summary->find("paper_mean")->asNumber(), 39.1);
    EXPECT_EQ(summary->find("shape")->asString(),
              "StPIM > CORUSCANT");

    std::remove(path);
}

TEST(SweepRunner, SchemaVersionLeadsTheReport)
{
    // Insertion order is the serialization order, so the version is
    // the first thing a reader (or a failing CI diff) sees.
    SweepRunner sweep("unit_schema");
    sweep.add("r", "c", [] { return SweepCellResult{1.0, {}}; });
    sweep.run();
    const std::string dump = sweep.report().dump(2);
    const auto v = dump.find("\"schema_version\"");
    const auto b = dump.find("\"bench\"");
    ASSERT_NE(v, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(v, b);
}

TEST(SweepRunner, ValuesIndependentOfDeclarationVsExecutionOrder)
{
    // Two identical grids; results must match cell for cell even
    // though execution interleaving differs between runs.
    SweepRunner a = makeGrid();
    SweepRunner b = makeGrid();
    a.run();
    b.run();
    for (const auto &row : a.rows())
        for (const auto &col : a.cols())
            EXPECT_DOUBLE_EQ(a.value(row, col), b.value(row, col));
}

TEST(SweepRunner, SerialReferenceIsOptIn)
{
    SweepRunner sweep = makeGrid();
    sweep.run();
    // Without force / STREAMPIM_PERF_REF the reference is skipped.
    EXPECT_FALSE(sweep.measureSerialReference());
    EXPECT_DOUBLE_EQ(sweep.serialSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(sweep.speedupVsSerial(), 0.0);
    // And the report carries no perf section (no functional_ops).
    EXPECT_EQ(sweep.report().find("perf"), nullptr);
}

TEST(SweepRunner, SerialReferenceRecordsTimingAndVerifies)
{
    SweepRunner sweep = makeGrid();
    sweep.run();
    ASSERT_TRUE(sweep.measureSerialReference(/*force=*/true));
    EXPECT_GT(sweep.serialSeconds(), 0.0);
    EXPECT_GT(sweep.speedupVsSerial(), 0.0);

    const Json doc = sweep.report();
    const Json *perf = doc.find("perf");
    ASSERT_NE(perf, nullptr);
    EXPECT_DOUBLE_EQ(perf->find("serial_seconds")->asNumber(),
                     sweep.serialSeconds());
    EXPECT_DOUBLE_EQ(perf->find("speedup_vs_serial")->asNumber(),
                     sweep.speedupVsSerial());
}

TEST(SweepRunner, SerialReferenceRunsCellsInsideSerialSection)
{
    // Cells observing ThreadPool::inSerialSection() prove the
    // reference timing really runs everything inline.
    SweepRunner sweep("unit_serial_section");
    auto *serial_seen = new std::atomic<int>(0);
    sweep.add("r", "c", [serial_seen] {
        if (ThreadPool::inSerialSection())
            serial_seen->fetch_add(1);
        return SweepCellResult{1.0, {}};
    });
    sweep.run();
    EXPECT_EQ(serial_seen->load(), 0);
    ASSERT_TRUE(sweep.measureSerialReference(/*force=*/true));
    EXPECT_EQ(serial_seen->load(), 1);
    delete serial_seen;
}
