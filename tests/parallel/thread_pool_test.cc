#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/thread_pool.hh"

using namespace streampim;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SingleJobRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.submit([&] { seen = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("cell failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool keeps working.
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, CoversTheWholeRangeOnce)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(257);
        parallelFor(hits.size(), jobs,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
        for (auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    parallelFor(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ResultsIndependentOfJobCount)
{
    auto compute = [](unsigned jobs) {
        std::vector<double> out(64);
        parallelFor(out.size(), jobs, [&](std::size_t i) {
            double v = double(i) + 1.0;
            for (int it = 0; it < 1000; ++it)
                v = v * 1.0000001 + 0.5;
            out[i] = v;
        });
        return out;
    };
    EXPECT_EQ(compute(1), compute(7));
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, WaitWithZeroTasksReturnsImmediately)
{
    ThreadPool pool(4);
    pool.wait(); // nothing submitted: must not block or throw
    ThreadPool inline_pool(1);
    inline_pool.wait();
}

TEST(ThreadPool, NestedSubmitFromWorkerRuns)
{
    // The parallel VPC engine submits a task's ready successors
    // from inside the task body; wait() must not return before
    // those nested tasks finish.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&] {
            pool.submit([&] {
                pool.submit([&] { ran.fetch_add(1); });
                ran.fetch_add(1);
            });
            ran.fetch_add(1);
        });
    pool.wait();
    EXPECT_EQ(ran.load(), 48);
}

TEST(ThreadPool, ExceptionDoesNotStopQueuedWork)
{
    // One failing task must not prevent the rest of the queue from
    // draining; the first error surfaces at wait().
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    for (int i = 0; i < 32; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ResolveJobsPassesThroughOutsideSerialSection)
{
    ASSERT_FALSE(ThreadPool::inSerialSection());
    EXPECT_EQ(ThreadPool::resolveJobs(7), 7u);
    EXPECT_EQ(ThreadPool::resolveJobs(0),
              ThreadPool::defaultJobs());
}

TEST(ThreadPool, SerialSectionForcesOneJobAndNests)
{
    {
        ThreadPool::SerialSection outer;
        EXPECT_TRUE(ThreadPool::inSerialSection());
        EXPECT_EQ(ThreadPool::resolveJobs(8), 1u);
        EXPECT_EQ(ThreadPool::resolveJobs(0), 1u);
        {
            ThreadPool::SerialSection inner;
            EXPECT_EQ(ThreadPool::resolveJobs(8), 1u);
        }
        // Still serial: the outer section is alive.
        EXPECT_TRUE(ThreadPool::inSerialSection());
        EXPECT_EQ(ThreadPool::resolveJobs(8), 1u);
    }
    EXPECT_FALSE(ThreadPool::inSerialSection());
    EXPECT_EQ(ThreadPool::resolveJobs(8), 8u);
}

TEST(ThreadPool, SerialSectionIsThreadLocal)
{
    ThreadPool::SerialSection serial;
    ASSERT_TRUE(ThreadPool::inSerialSection());
    bool other_thread_serial = true;
    std::thread probe([&] {
        other_thread_serial = ThreadPool::inSerialSection();
    });
    probe.join();
    EXPECT_FALSE(other_thread_serial);
}

TEST(ThreadPool, SplitJobsSharesTheBudgetAcrossLevels)
{
    // gtest_discover_tests runs each TEST in its own process, so
    // mutating the environment here cannot leak into other tests.
    setenv("STREAMPIM_JOBS", "8", 1);
    unsetenv("STREAMPIM_DEVICE_JOBS");

    // Fan-out smaller than the budget: every device runs, and the
    // leftover budget becomes engine jobs inside each.
    ThreadPool::JobSplit s = ThreadPool::splitJobs(4);
    EXPECT_EQ(s.outer, 4u);
    EXPECT_EQ(s.inner, 2u);

    // Fan-out larger than the budget: outer caps at the budget.
    s = ThreadPool::splitJobs(16);
    EXPECT_EQ(s.outer, 8u);
    EXPECT_EQ(s.inner, 1u);

    // Zero fan-out degenerates to one device with the full budget.
    s = ThreadPool::splitJobs(0);
    EXPECT_EQ(s.outer, 1u);
    EXPECT_EQ(s.inner, 8u);

    unsetenv("STREAMPIM_JOBS");
}

TEST(ThreadPool, SplitJobsHonorsDeviceJobsCap)
{
    setenv("STREAMPIM_JOBS", "8", 1);
    setenv("STREAMPIM_DEVICE_JOBS", "2", 1);

    const ThreadPool::JobSplit s = ThreadPool::splitJobs(4);
    EXPECT_EQ(s.outer, 2u);
    EXPECT_EQ(s.inner, 4u);

    unsetenv("STREAMPIM_DEVICE_JOBS");
    unsetenv("STREAMPIM_JOBS");
}

TEST(ThreadPool, SplitJobsNeverOversubscribes)
{
    // outer * inner <= resolveJobs(requested) at every combination
    // of fan-out, explicit request and DEVICE_JOBS cap.
    for (unsigned env_dev : {0u, 1u, 3u, 16u}) {
        if (env_dev == 0)
            unsetenv("STREAMPIM_DEVICE_JOBS");
        else
            setenv("STREAMPIM_DEVICE_JOBS",
                   std::to_string(env_dev).c_str(), 1);
        for (unsigned requested : {1u, 2u, 5u, 8u})
            for (unsigned fanout : {1u, 2u, 4u, 9u}) {
                const ThreadPool::JobSplit s =
                    ThreadPool::splitJobs(fanout, requested);
                EXPECT_GE(s.outer, 1u);
                EXPECT_GE(s.inner, 1u);
                EXPECT_LE(s.outer, std::max(fanout, 1u));
                EXPECT_LE(s.outer * s.inner,
                          ThreadPool::resolveJobs(requested))
                    << "dev=" << env_dev << " req=" << requested
                    << " fanout=" << fanout;
            }
    }
    unsetenv("STREAMPIM_DEVICE_JOBS");
}

TEST(ThreadPool, SplitJobsCollapsesInSerialSection)
{
    setenv("STREAMPIM_JOBS", "8", 1);
    ThreadPool::SerialSection serial;
    const ThreadPool::JobSplit s = ThreadPool::splitJobs(4);
    EXPECT_EQ(s.outer, 1u);
    EXPECT_EQ(s.inner, 1u);
    unsetenv("STREAMPIM_JOBS");
}
