#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hh"

using namespace streampim;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SingleJobRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.submit([&] { seen = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("cell failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool keeps working.
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, CoversTheWholeRangeOnce)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(257);
        parallelFor(hits.size(), jobs,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
        for (auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    parallelFor(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ResultsIndependentOfJobCount)
{
    auto compute = [](unsigned jobs) {
        std::vector<double> out(64);
        parallelFor(out.size(), jobs, [&](std::size_t i) {
            double v = double(i) + 1.0;
            for (int it = 0; it < 1000; ++it)
                v = v * 1.0000001 + 0.5;
            out[i] = v;
        });
        return out;
    };
    EXPECT_EQ(compute(1), compute(7));
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}
