/**
 * @file
 * Unit tests for the GPU offload model (Fig. 3b).
 */

#include <gtest/gtest.h>

#include "baselines/gpu_model.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

TEST(GpuModel, BreakdownSumsToTotal)
{
    GpuPlatform gpu;
    TaskGraph g = makePolybench(PolybenchKernel::Atax, 512);
    PlatformResult r = gpu.run(g);
    EXPECT_NEAR(r.timeCategory("transfer") + r.timeCategory("kernel"),
                r.seconds, r.seconds * 1e-9);
}

TEST(GpuModel, TransferScalesWithWorkingSet)
{
    GpuPlatform gpu;
    double small = gpu.run(makePolybench(PolybenchKernel::Mvt, 256))
                       .timeCategory("transfer");
    double large = gpu.run(makePolybench(PolybenchKernel::Mvt, 1024))
                       .timeCategory("transfer");
    // Working set grows ~16x with the dimension squared.
    EXPECT_GT(large, small * 10);
}

TEST(GpuModel, LaunchOverheadChargedPerOp)
{
    GpuParams slow;
    slow.kernelLaunchUs = 1000.0; // absurd launches
    GpuPlatform gpu_slow(slow);
    GpuPlatform gpu_fast;
    TaskGraph g = makePolybench(PolybenchKernel::Gesummv, 64);
    EXPECT_GT(gpu_slow.run(g).seconds, gpu_fast.run(g).seconds);
}

TEST(GpuModel, DenseKernelsLessTransferBound)
{
    // gemm has high arithmetic intensity, so its transfer share is
    // far below the matrix-vector kernels'.
    GpuPlatform gpu;
    PlatformResult mv = gpu.run(makePolybench(PolybenchKernel::Mvt,
                                              2000));
    PlatformResult mm = gpu.run(makePolybench(PolybenchKernel::Gemm,
                                              2000));
    double mv_frac = mv.timeCategory("transfer") / mv.seconds;
    double mm_frac = mm.timeCategory("transfer") / mm.seconds;
    EXPECT_GT(mv_frac, mm_frac);
}

TEST(GpuModel, EnergyFollowsBoardPower)
{
    GpuPlatform gpu;
    TaskGraph g = makePolybench(PolybenchKernel::Bicg, 512);
    PlatformResult r = gpu.run(g);
    EXPECT_NEAR(r.joules, 220.0 * r.seconds, 1e-9);
}

} // namespace
} // namespace streampim
