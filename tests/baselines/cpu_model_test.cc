/**
 * @file
 * Unit tests for the host CPU model's op accounting.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_model.hh"

namespace streampim
{
namespace
{

TaskGraph
singleOpGraph(MatOpKind kind, unsigned i, unsigned k, unsigned j)
{
    TaskGraph g;
    auto a = g.addMatrix("A", i, k);
    switch (kind) {
      case MatOpKind::MatMul: {
        auto b = g.addMatrix("B", k, j);
        auto c = g.addMatrix("C", i, j);
        g.addOp(kind, a, b, c);
        break;
      }
      case MatOpKind::MatVec: {
        auto x = g.addMatrix("x", k, 1);
        auto y = g.addMatrix("y", i, 1);
        g.addOp(kind, a, x, y);
        break;
      }
      case MatOpKind::MatAdd: {
        auto b = g.addMatrix("B", i, k);
        auto c = g.addMatrix("C", i, k);
        g.addOp(kind, a, b, c);
        break;
      }
      default: {
        auto c = g.addMatrix("C", i, k);
        g.addOp(kind, a, a, c);
        break;
      }
    }
    return g;
}

TEST(CpuModelAccounting, MatMulMacs)
{
    CpuPlatform cpu(HostMemKind::Dram);
    TaskGraph g = singleOpGraph(MatOpKind::MatMul, 10, 20, 30);
    EXPECT_EQ(cpu.opMacs(g, g.ops[0]), 10u * 20 * 30);
}

TEST(CpuModelAccounting, CacheResidentMatricesFetchedOnce)
{
    CpuPlatform cpu(HostMemKind::Dram);
    // Tiny matmul: everything fits the 8 MiB L2 -> traffic is one
    // pass over each operand (in 8 B doubles).
    TaskGraph g = singleOpGraph(MatOpKind::MatMul, 16, 16, 16);
    std::uint64_t traffic = cpu.opTrafficBytes(g, g.ops[0]);
    EXPECT_EQ(traffic, 3u * 16 * 16 * 8);
}

TEST(CpuModelAccounting, OversizedRhsRestreamsWithWaste)
{
    CpuPlatform cpu(HostMemKind::Dram);
    // B = 2000x2000 doubles = 32 MB > L2: re-streamed per row of A
    // with the stride-waste factor.
    TaskGraph g = singleOpGraph(MatOpKind::MatMul, 100, 2000, 2000);
    std::uint64_t traffic = cpu.opTrafficBytes(g, g.ops[0]);
    std::uint64_t b_bytes = 2000ull * 2000 * 8;
    EXPECT_GT(traffic, b_bytes * 100); // at least one pass per row
}

TEST(CpuModelAccounting, MatAddStreamsAllThreeOperands)
{
    CpuPlatform cpu(HostMemKind::Rm);
    TaskGraph g = singleOpGraph(MatOpKind::MatAdd, 64, 64, 0);
    EXPECT_EQ(cpu.opTrafficBytes(g, g.ops[0]), 3u * 64 * 64 * 8);
}

TEST(CpuModelAccounting, NonlinearWeightScalesHostWork)
{
    CpuPlatform cpu(HostMemKind::Rm);
    TaskGraph g;
    auto a = g.addMatrix("A", 32, 32);
    auto c1 = g.addMatrix("C1", 32, 32);
    auto c2 = g.addMatrix("C2", 32, 32);
    g.addOp(MatOpKind::Nonlinear, a, a, c1, 1.0);  // ReLU-ish
    g.addOp(MatOpKind::Nonlinear, a, a, c2, 12.0); // softmax-ish
    EXPECT_EQ(cpu.opMacs(g, g.ops[1]),
              12 * cpu.opMacs(g, g.ops[0]));
}

TEST(CpuModelAccounting, TotalTimeIsMonotoneInWork)
{
    CpuPlatform cpu(HostMemKind::Rm);
    double small =
        cpu.run(singleOpGraph(MatOpKind::MatMul, 64, 64, 64))
            .seconds;
    double large =
        cpu.run(singleOpGraph(MatOpKind::MatMul, 128, 128, 128))
            .seconds;
    EXPECT_GT(large, small);
}

TEST(CpuModelAccounting, NamesIdentifyMemoryKind)
{
    EXPECT_EQ(CpuPlatform(HostMemKind::Rm).name(), "CPU-RM");
    EXPECT_EQ(CpuPlatform(HostMemKind::Dram).name(), "CPU-DRAM");
}

} // namespace
} // namespace streampim
