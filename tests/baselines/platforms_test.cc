/**
 * @file
 * Tests for the baseline platform models: internal consistency and
 * the qualitative orderings the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "baselines/bitwise_pim.hh"
#include "baselines/coruscant.hh"
#include "baselines/cpu_model.hh"
#include "baselines/gpu_model.hh"
#include "baselines/stream_pim_platform.hh"
#include "workloads/polybench.hh"

namespace streampim
{
namespace
{

TaskGraph
mediumGemm()
{
    return makePolybench(PolybenchKernel::Gemm, 192);
}

TEST(CpuModel, DramBeatsRmOnTime)
{
    // DDR4's lower random-access latency makes CPU-DRAM faster
    // (Fig. 17's ~1.5x).
    CpuPlatform rm(HostMemKind::Rm);
    CpuPlatform dram(HostMemKind::Dram);
    TaskGraph g = mediumGemm();
    double srm = rm.run(g).seconds;
    double sdram = dram.run(g).seconds;
    EXPECT_GT(srm, sdram);
    EXPECT_LT(srm / sdram, 2.5);
}

TEST(CpuModel, BreakdownSumsToTotal)
{
    CpuPlatform cpu(HostMemKind::Rm);
    PlatformResult r = cpu.run(mediumGemm());
    EXPECT_NEAR(r.timeCategory("compute") + r.timeCategory("mem"),
                r.seconds, r.seconds * 1e-9);
    EXPECT_GT(r.joules, 0.0);
}

TEST(CpuModel, SmallKernelsAreMemoryBound)
{
    // Fig. 3a: the matrix-vector kernels spend ~half their time in
    // memory.
    CpuPlatform cpu(HostMemKind::Rm);
    TaskGraph g = makePolybench(PolybenchKernel::Atax, 2000);
    PlatformResult r = cpu.run(g);
    double frac = r.timeCategory("mem") / r.seconds;
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.75);
}

TEST(GpuModel, SmallKernelsAreTransferBound)
{
    // Fig. 3b: ~90% of GPU time is host-device transfer.
    GpuPlatform gpu;
    TaskGraph g = makePolybench(PolybenchKernel::Mvt, 2000);
    PlatformResult r = gpu.run(g);
    EXPECT_GT(r.timeCategory("transfer") / r.seconds, 0.5);
}

TEST(Coruscant, WriteDominatesTimeAndEnergy)
{
    // Fig. 4's central observation.
    CoruscantPlatform c;
    auto mul = c.multiplyCost();
    EXPECT_GT(mul.writeNs, mul.readNs);
    EXPECT_GT(mul.writeNs, mul.computeNs);
    EXPECT_GT(mul.writePj / mul.totalPj(), 0.4);
    // Arithmetic is a minority share (paper: ~30%).
    EXPECT_LT(mul.computeNs / mul.totalNs(), 0.4);
}

TEST(Coruscant, DotMacFoldsAccumulation)
{
    CoruscantPlatform c;
    EXPECT_DOUBLE_EQ(c.dotMacCost().totalNs(),
                     c.multiplyCost().totalNs());
}

TEST(Coruscant, RunScalesWithWork)
{
    CoruscantPlatform c;
    double small = c.run(makePolybench(PolybenchKernel::Gemm, 64))
                       .seconds;
    double large = c.run(makePolybench(PolybenchKernel::Gemm, 128))
                       .seconds;
    EXPECT_GT(large, small * 4); // ~8x the MACs
}

TEST(BitwisePim, FelixBeatsElp2im)
{
    // FELIX removes DRAM precharge phases (Fig. 17: 8.7x vs 3.6x).
    BitwisePimPlatform elp2im(BitwisePimParams::elp2im());
    BitwisePimPlatform felix(BitwisePimParams::felix());
    TaskGraph g = mediumGemm();
    EXPECT_GT(elp2im.run(g).seconds, felix.run(g).seconds);
}

TEST(BitwisePim, RefreshChargedOnlyForDram)
{
    BitwisePimPlatform elp2im(BitwisePimParams::elp2im());
    BitwisePimPlatform felix(BitwisePimParams::felix());
    TaskGraph g = mediumGemm();
    EXPECT_GT(elp2im.run(g).energyCategory("refresh"), 0.0);
    EXPECT_DOUBLE_EQ(felix.run(g).energyCategory("refresh"), 0.0);
}

TEST(StreamPim, FasterAndGreenerThanCpu)
{
    StreamPimPlatform stpim(SystemConfig::paperDefault());
    CpuPlatform cpu(HostMemKind::Rm);
    TaskGraph g = mediumGemm();
    PlatformResult sp = stpim.run(g);
    PlatformResult host = cpu.run(g);
    EXPECT_LT(sp.seconds, host.seconds);
    EXPECT_LT(sp.joules, host.joules);
}

TEST(StreamPim, ElectricalBusVariantIsSlower)
{
    SystemConfig e = SystemConfig::paperDefault();
    e.busType = BusType::Electrical;
    StreamPimPlatform stpim(SystemConfig::paperDefault());
    StreamPimPlatform stpim_e(e);
    EXPECT_EQ(stpim.name(), "StPIM");
    EXPECT_EQ(stpim_e.name(), "StPIM-e");
    TaskGraph g = mediumGemm();
    EXPECT_LT(stpim.run(g).seconds, stpim_e.run(g).seconds);
    EXPECT_LT(stpim.run(g).joules, stpim_e.run(g).joules);
}

TEST(StreamPim, OptimizationOrderingHolds)
{
    // Fig. 22's base < distribute < unblock.
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 128);
    double secs[3];
    int i = 0;
    for (OptLevel level : {OptLevel::Base, OptLevel::Distribute,
                           OptLevel::Unblock}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.optLevel = level;
        StreamPimPlatform p(cfg);
        secs[i++] = p.run(g).seconds;
    }
    EXPECT_GT(secs[0], secs[1]);
    EXPECT_GT(secs[1], secs[2]);
    // distribute's gain is roughly the PIM bank count; unblock goes
    // far beyond it.
    EXPECT_GT(secs[0] / secs[2], 20.0);
}

TEST(StreamPim, ExclusiveTransferIsHiddenByPipelining)
{
    // Fig. 19: StPIM's exclusive transfer share is tiny.
    StreamPimPlatform stpim(SystemConfig::paperDefault());
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 256);
    PlatformResult r = stpim.run(g);
    EXPECT_LT(r.timeCategory("excl_transfer") / r.seconds, 0.15);
}

TEST(StreamPim, MoreSubarraysNeverSlower)
{
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 256);
    double prev = 1e300;
    for (unsigned count : {128u, 256u, 512u}) {
        SystemConfig cfg = SystemConfig::paperDefault();
        cfg.rm.subarraysPerBank = count / cfg.rm.pimBanks;
        cfg.rm.matsPerSubarray = 16 * 64 / cfg.rm.subarraysPerBank;
        StreamPimPlatform p(cfg);
        double s = p.run(g).seconds;
        EXPECT_LE(s, prev * 1.05) << count;
        prev = s;
    }
}

TEST(StreamPim, SegmentSizeBarelyMatters)
{
    // Table V: < a few percent between 64 and 1024.
    TaskGraph g = makePolybench(PolybenchKernel::Gemm, 256);
    SystemConfig small_cfg = SystemConfig::paperDefault();
    small_cfg.rm.busSegmentSize = 64;
    SystemConfig big_cfg = SystemConfig::paperDefault();
    big_cfg.rm.busSegmentSize = 1024;
    double s_small = StreamPimPlatform(small_cfg).run(g).seconds;
    double s_big = StreamPimPlatform(big_cfg).run(g).seconds;
    EXPECT_NEAR(s_small / s_big, 1.0, 0.1);
}

} // namespace
} // namespace streampim
