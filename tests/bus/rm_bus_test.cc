/**
 * @file
 * Tests for the segmented RM bus: the functional lane model, the
 * multi-lane bus, and the closed-form timing/energy model.
 */

#include <gtest/gtest.h>

#include "bus/rm_bus.hh"
#include "common/rng.hh"
#include "rm/params.hh"

namespace streampim
{
namespace
{

TEST(RmBusLane, StartsDrained)
{
    RmBusLane lane(4);
    EXPECT_TRUE(lane.drained());
    EXPECT_EQ(lane.occupancy(), 0u);
    EXPECT_FALSE(lane.peekOutput().has_value());
}

TEST(RmBusLane, InjectNeedsDataAndEmptySegments)
{
    RmBusLane lane(4);
    EXPECT_TRUE(lane.inject(7));
    // The data/empty couple rule refuses back-to-back injection.
    EXPECT_FALSE(lane.inject(8));
    lane.step();
    // After one step the word is at segment 1; segment 0 and 1 must
    // both be free, so injection is still refused.
    EXPECT_FALSE(lane.inject(8));
    lane.step();
    EXPECT_TRUE(lane.inject(8));
}

TEST(RmBusLane, WordTraversesOneSegmentPerCycle)
{
    RmBusLane lane(5);
    lane.inject(42);
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(lane.peekOutput().has_value());
        lane.step();
    }
    lane.step();
    ASSERT_TRUE(lane.peekOutput().has_value());
    EXPECT_EQ(*lane.peekOutput(), 42u);
}

TEST(RmBusLane, TakeOutputRemovesWord)
{
    RmBusLane lane(2);
    lane.inject(5);
    lane.step();
    EXPECT_EQ(*lane.takeOutput(), 5u);
    EXPECT_FALSE(lane.peekOutput().has_value());
    EXPECT_TRUE(lane.drained());
}

TEST(RmBusLane, DataNeverOvertakesOrMerges)
{
    // Two words must stay ordered and separated.
    RmBusLane lane(8);
    lane.inject(1);
    lane.step();
    lane.step();
    lane.inject(2);
    std::vector<std::uint64_t> arrivals;
    for (int i = 0; i < 20; ++i) {
        lane.step();
        if (auto w = lane.takeOutput())
            arrivals.push_back(*w);
    }
    EXPECT_EQ(arrivals, (std::vector<std::uint64_t>{1, 2}));
}

TEST(RmBus, TransferAllPreservesPayload)
{
    RmBus bus(8, 6);
    std::vector<std::uint64_t> payload;
    for (int i = 0; i < 100; ++i)
        payload.push_back(std::uint64_t(i) * 3 + 1);
    Cycle cycles = 0;
    auto arrived = bus.transferAll(payload, cycles);
    ASSERT_EQ(arrived.size(), payload.size());
    // Arrival order may interleave across lanes; as a multiset the
    // payload is conserved.
    std::sort(arrived.begin(), arrived.end());
    std::vector<std::uint64_t> expect = payload;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(arrived, expect);
    EXPECT_GT(cycles, 0u);
}

TEST(RmBus, MoreLanesFewerCycles)
{
    std::vector<std::uint64_t> payload(256, 9);
    Cycle narrow = 0, wide = 0;
    RmBus bus1(2, 6);
    bus1.transferAll(payload, narrow);
    RmBus bus2(16, 6);
    bus2.transferAll(payload, wide);
    EXPECT_LT(wide, narrow);
}

/** Property: the functional bus is never slower than the analytic
 * lower bound and close to the closed-form model. */
class BusTimingSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(BusTimingSweep, FunctionalMatchesClosedForm)
{
    auto [words, segments] = GetParam();
    RmBus bus(8, segments);
    std::vector<std::uint64_t> payload(words, 0x5A);
    Cycle functional = 0;
    bus.transferAll(payload, functional);
    // Closed-form: traversal + one wave per 2 cycles per lane. The
    // functional model drains the output eagerly, so it can beat
    // the model by up to the traversal latency; drain effects can
    // cost a little extra at the tail.
    std::uint64_t waves = (words + 8 - 1) / 8;
    Cycle closed = segments + 2 * (waves - 1);
    EXPECT_GE(functional + segments, closed);
    EXPECT_LE(functional, closed + 2 * segments + 8);
}

INSTANTIATE_TEST_SUITE_P(
    WordSegmentGrid, BusTimingSweep,
    ::testing::Combine(::testing::Values(1u, 8u, 64u, 333u),
                       ::testing::Values(4u, 8u, 16u)));

TEST(RmBusTiming, SegmentCountFromGeometry)
{
    RmParams rm;
    rm.busLengthDomains = 4096;
    rm.busSegmentSize = 1024;
    RmBusTiming t(rm);
    EXPECT_EQ(t.segmentCount(), 4u);
    rm.busSegmentSize = 64;
    EXPECT_EQ(RmBusTiming(rm).segmentCount(), 64u);
}

TEST(RmBusTiming, SmallerSegmentsMoreCycles)
{
    RmParams rm;
    rm.busSegmentSize = 1024;
    Cycle big = RmBusTiming(rm).transferCycles(2000);
    rm.busSegmentSize = 64;
    Cycle small = RmBusTiming(rm).transferCycles(2000);
    EXPECT_GT(small, big);
}

TEST(RmBusTiming, EnergyIsFlatAcrossSegmentSizes)
{
    // The pulse-energy x pulse-count product is segment-size
    // independent (Table V's energy column).
    RmParams rm;
    auto energy_for = [&](unsigned seg) {
        rm.busSegmentSize = seg;
        EnergyMeter meter;
        RmEnergyModel energy(rm, meter);
        RmBusTiming(rm).recordTransferEnergy(energy, 8192);
        return meter.energyPj(EnergyOp::BusShift);
    };
    double e64 = energy_for(64);
    double e1024 = energy_for(1024);
    EXPECT_NEAR(e64 / e1024, 1.0, 0.05);
}

TEST(RmBusTiming, ZeroElementsCostNothing)
{
    RmParams rm;
    EXPECT_EQ(RmBusTiming(rm).transferCycles(0), 0u);
}

TEST(RmBusTiming, ElementsPerWave)
{
    RmParams rm; // 64 lanes, 1024-domain segments
    RmBusTiming t(rm);
    EXPECT_EQ(t.laneGroups(), 8u);
    EXPECT_EQ(t.elementsPerWave(), 8u * 1024u);
}

} // namespace
} // namespace streampim
