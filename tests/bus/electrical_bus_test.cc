/**
 * @file
 * Tests for the electrical in-subarray bus model (StPIM-e).
 */

#include <gtest/gtest.h>

#include "bus/electrical_bus.hh"

namespace streampim
{
namespace
{

TEST(ElectricalBus, IngressIsPerBitWritePlusShift)
{
    RmParams rm;
    ElectricalBusTiming e(rm);
    const Tick per_bit = rm.writeTicks() + rm.shiftTicks(1);
    EXPECT_EQ(e.wordIngressTicks(), kOperandBits * per_bit);
}

TEST(ElectricalBus, EgressScalesWithResultWidth)
{
    RmParams rm;
    ElectricalBusTiming e(rm);
    EXPECT_EQ(e.wordEgressTicks(16), 2 * e.wordEgressTicks(8));
}

TEST(ElectricalBus, ConversionOverlapReducesExposedTime)
{
    RmParams rm;
    ElectricalBusTiming e(rm);
    Tick raw = e.wordIngressTicks();
    Tick exposed = e.perElementConversionTicks(0);
    EXPECT_LT(exposed, raw);
    EXPECT_NEAR(double(exposed),
                double(raw) *
                    (1.0 - ElectricalBusTiming::kConversionOverlap),
                2.0);
}

TEST(ElectricalBus, DotProductElementsPayIngressOnly)
{
    // Dot products emit one scalar per VPC, so per-element egress
    // is zero and ingress dominates.
    RmParams rm;
    ElectricalBusTiming e(rm);
    EXPECT_EQ(e.perElementConversionTicks(0),
              Tick(double(e.wordIngressTicks()) *
                   (1.0 - ElectricalBusTiming::kConversionOverlap)));
}

TEST(ElectricalBus, WideEgressCanDominate)
{
    RmParams rm;
    ElectricalBusTiming e(rm);
    // A wide-enough per-element result makes egress the maximum.
    Tick with_wide = e.perElementConversionTicks(64);
    Tick ingress_only = e.perElementConversionTicks(0);
    EXPECT_GT(with_wide, ingress_only);
}

TEST(ElectricalBus, LocalPulseEnergyScalesWithDriverWidth)
{
    RmParams rm;
    ElectricalBusTiming e(rm);
    EXPECT_DOUBLE_EQ(e.localPulsePj(rm.writePj),
                     rm.writePj / rm.saveTracksPerMat);
}

TEST(ElectricalBus, IngressEnergyPerElement)
{
    RmParams rm;
    ElectricalBusTiming e(rm);
    EnergyMeter meter;
    EnergyMeter scratch;
    RmEnergyModel model(rm, scratch);
    e.recordIngressEnergy(model, meter, 100);
    // 100 elements x 2 operands x 8 bits of local pulses.
    EXPECT_EQ(meter.count(EnergyOp::BusElectrical), 1600u);
    double per_bit = e.localPulsePj(rm.writePj) +
                     e.localPulsePj(rm.shiftPj);
    EXPECT_NEAR(meter.energyPj(EnergyOp::BusElectrical),
                1600 * per_bit, 1e-9);
}

TEST(ElectricalBus, EgressEnergyPerWord)
{
    RmParams rm;
    ElectricalBusTiming e(rm);
    EnergyMeter meter;
    e.recordEgressEnergy(meter, 10, 32);
    EXPECT_EQ(meter.count(EnergyOp::BusElectrical), 320u);
}

} // namespace
} // namespace streampim
