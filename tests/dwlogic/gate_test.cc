/**
 * @file
 * Unit tests for domain-wall logic gates, fan-out and diode.
 */

#include <gtest/gtest.h>

#include "dwlogic/gate.hh"

namespace streampim
{
namespace
{

TEST(DwGate, NotTruthTable)
{
    LogicCounters c;
    DwGate g(DwGateType::Not, c);
    EXPECT_TRUE(g.evalNot(false));
    EXPECT_FALSE(g.evalNot(true));
}

TEST(DwGate, NandTruthTable)
{
    LogicCounters c;
    DwGate g(DwGateType::Nand, c);
    EXPECT_TRUE(g.eval(false, false));
    EXPECT_TRUE(g.eval(false, true));
    EXPECT_TRUE(g.eval(true, false));
    EXPECT_FALSE(g.eval(true, true));
}

TEST(DwGate, NorTruthTable)
{
    LogicCounters c;
    DwGate g(DwGateType::Nor, c);
    EXPECT_TRUE(g.eval(false, false));
    EXPECT_FALSE(g.eval(false, true));
    EXPECT_FALSE(g.eval(true, false));
    EXPECT_FALSE(g.eval(true, true));
}

TEST(DwGate, AndOrAreCompositeGates)
{
    LogicCounters c;
    DwGate g_and(DwGateType::And, c);
    EXPECT_TRUE(g_and.eval(true, true));
    EXPECT_FALSE(g_and.eval(true, false));
    // AND = NAND + inverter: two gate ops per eval.
    EXPECT_EQ(c.gateOps, 4u);

    LogicCounters c2;
    DwGate g_or(DwGateType::Or, c2);
    EXPECT_TRUE(g_or.eval(false, true));
    EXPECT_FALSE(g_or.eval(false, false));
    EXPECT_EQ(c2.gateOps, 4u);
}

TEST(DwGate, EveryEvalCountsGateAndShift)
{
    LogicCounters c;
    DwGate g(DwGateType::Nand, c);
    g.eval(true, true);
    EXPECT_EQ(c.gateOps, 1u);
    EXPECT_EQ(c.shiftSteps, 1u);
    g.eval(false, true);
    EXPECT_EQ(c.gateOps, 2u);
    EXPECT_EQ(c.shiftSteps, 2u);
}

TEST(DwGate, TruthMatchesEvalForAllInputs)
{
    LogicCounters c;
    for (auto type : {DwGateType::Nand, DwGateType::Nor,
                      DwGateType::And, DwGateType::Or}) {
        DwGate g(type, c);
        for (bool a : {false, true})
            for (bool b : {false, true})
                EXPECT_EQ(g.eval(a, b), DwGate::truth(type, a, b));
    }
}

TEST(DwGate, GateEnergyMatchesPaperPerGateValue)
{
    // Sec. V-F: 0.0008 pJ per gate at the 32 nm node.
    LogicCounters c;
    DwGate g(DwGateType::Nand, c);
    for (int i = 0; i < 10; ++i)
        g.eval(true, false);
    EXPECT_DOUBLE_EQ(c.gateEnergyPj(), 10 * 0.0008);
}

TEST(DwFanOut, SplitsDomainIntoTwoCopies)
{
    LogicCounters c;
    DwFanOut f(c);
    auto p1 = f.split(true);
    EXPECT_TRUE(p1.first);
    EXPECT_TRUE(p1.second);
    auto p0 = f.split(false);
    EXPECT_FALSE(p0.first);
    EXPECT_FALSE(p0.second);
    EXPECT_EQ(c.fanOuts, 2u);
}

TEST(DwDiode, BlocksWhenDisabled)
{
    LogicCounters c;
    DwDiode d(c);
    bool bit = true;
    EXPECT_FALSE(d.passForward(bit));
    EXPECT_EQ(c.diodePasses, 0u);
}

TEST(DwDiode, PassesForwardWhenEnabled)
{
    LogicCounters c;
    DwDiode d(c);
    d.enable();
    bool bit = true;
    EXPECT_TRUE(d.passForward(bit));
    EXPECT_TRUE(bit); // value unchanged
    EXPECT_EQ(c.diodePasses, 1u);
}

TEST(DwDiode, NeverPassesReverse)
{
    LogicCounters c;
    DwDiode d(c);
    EXPECT_FALSE(d.passReverse());
    d.enable();
    EXPECT_FALSE(d.passReverse());
}

TEST(LogicCounters, MergeAccumulates)
{
    LogicCounters a, b;
    a.gateOps = 3;
    a.shiftSteps = 5;
    b.gateOps = 7;
    b.fanOuts = 2;
    a += b;
    EXPECT_EQ(a.gateOps, 10u);
    EXPECT_EQ(a.shiftSteps, 5u);
    EXPECT_EQ(a.fanOuts, 2u);
}

} // namespace
} // namespace streampim
