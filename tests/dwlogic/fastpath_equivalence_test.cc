/**
 * @file
 * Randomized equivalence between the two functional-model levels:
 * the packed word-parallel fast path (default) must produce, for
 * every component, exactly the values, LogicCounters and energy of
 * the gate-netlist oracle (STREAMPIM_STRICT_GATES). These tests pin
 * the closed-form counter charges against the per-gate counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "dwlogic/adder.hh"
#include "dwlogic/circle_adder.hh"
#include "dwlogic/duplicator.hh"
#include "dwlogic/extension.hh"
#include "dwlogic/fp16.hh"
#include "dwlogic/mode.hh"
#include "dwlogic/multiplier.hh"
#include "processor/rm_processor.hh"

namespace streampim
{
namespace
{

void
expectCountersEqual(const LogicCounters &fast,
                    const LogicCounters &strict)
{
    EXPECT_EQ(fast.gateOps, strict.gateOps);
    EXPECT_EQ(fast.shiftSteps, strict.shiftSteps);
    EXPECT_EQ(fast.fanOuts, strict.fanOuts);
    EXPECT_EQ(fast.diodePasses, strict.diodePasses);
    EXPECT_DOUBLE_EQ(fast.gateEnergyPj(), strict.gateEnergyPj());
}

/**
 * Run @p body once per mode with fresh counters and compare the
 * counters afterwards; @p body returns the value under test, which
 * must also match.
 */
template <typename Body>
void
expectModesMatch(Body body)
{
    LogicCounters fast_c, strict_c;
    std::uint64_t fast_v, strict_v;
    {
        ScopedStrictGates mode(false);
        fast_v = body(fast_c);
    }
    {
        ScopedStrictGates mode(true);
        strict_v = body(strict_c);
    }
    EXPECT_EQ(fast_v, strict_v);
    expectCountersEqual(fast_c, strict_c);
}

TEST(FastPathEquivalence, RippleAdderRandom)
{
    for (unsigned width : {1u, 7u, 8u, 16u, 33u, 48u, 64u}) {
        Rng rng(width);
        for (int i = 0; i < 50; ++i) {
            const std::uint64_t mask =
                width == 64 ? ~0ull : (1ull << width) - 1;
            const std::uint64_t a = rng.next() & mask;
            const std::uint64_t b = rng.next() & mask;
            expectModesMatch([&](LogicCounters &c) {
                DwRippleCarryAdder add(width, c);
                auto r = add.add(BitVec::fromWord(a, width),
                                 BitVec::fromWord(b, width));
                return r.sum.toWord() | (std::uint64_t(r.carry)
                                         << 63);
            });
        }
    }
}

TEST(FastPathEquivalence, AdderCarryIn)
{
    expectModesMatch([](LogicCounters &c) {
        DwRippleCarryAdder add(8, c);
        auto r = add.add(BitVec::fromWord(0xFF, 8),
                         BitVec::fromWord(0x00, 8), true);
        return r.sum.toWord() | (std::uint64_t(r.carry) << 63);
    });
}

TEST(FastPathEquivalence, SubtractorRandom)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t a = rng.below(1u << 16);
        const std::uint64_t b = rng.below(1u << 16);
        expectModesMatch([&](LogicCounters &c) {
            DwSubtractor sub(16, c);
            auto r = sub.sub(BitVec::fromWord(a, 16),
                             BitVec::fromWord(b, 16));
            return r.difference.toWord() |
                   (std::uint64_t(r.borrow) << 63);
        });
    }
}

TEST(FastPathEquivalence, MultiplierRandomIncludingWide)
{
    // Widths beyond the old 32-bit multiplyWords limit included.
    for (unsigned width : {4u, 8u, 16u, 33u, 48u}) {
        Rng rng(width * 3 + 1);
        for (int i = 0; i < 20; ++i) {
            const std::uint64_t mask = (1ull << width) - 1;
            const std::uint64_t a = rng.next() & mask;
            const std::uint64_t b = rng.next() & mask;
            expectModesMatch([&](LogicCounters &c) {
                DwMultiplier mul(width, c);
                return mul.multiplyWords(a, b);
            });
        }
    }
}

TEST(FastPathEquivalence, MultiplierFullFlowWithDuplicator)
{
    Rng rng(23);
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t a = rng.below(256);
        const std::uint64_t b = rng.below(256);
        expectModesMatch([&](LogicCounters &c) {
            DwMultiplier mul(8, c);
            Duplicator dup(8, c);
            dup.load(BitVec::fromWord(a, 8));
            BitVec product = mul.multiply(dup, BitVec::fromWord(b, 8));
            dup.unload();
            return product.toWord();
        });
    }
}

TEST(FastPathEquivalence, DividerRandom)
{
    Rng rng(31);
    for (int i = 0; i < 30; ++i) {
        const std::uint64_t a = rng.below(1u << 12);
        const std::uint64_t b = 1 + rng.below((1u << 12) - 1);
        expectModesMatch([&](LogicCounters &c) {
            DwDivider div(12, c);
            auto r = div.divideWords(a, b);
            return r.quotient | (r.remainder << 16);
        });
    }
}

TEST(FastPathEquivalence, CircleAdderAccumulation)
{
    Rng rng(41);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<std::uint64_t> products;
        for (int i = 0; i < 8; ++i)
            products.push_back(rng.below(1u << 16));
        expectModesMatch([&](LogicCounters &c) {
            CircleAdder acc(32, c);
            for (std::uint64_t p : products)
                acc.accumulateWord(p, 16);
            return acc.accumulatorWord();
        });
    }
}

TEST(FastPathEquivalence, DuplicatorReplicas)
{
    Rng rng(43);
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t word = rng.below(1u << 16);
        expectModesMatch([&](LogicCounters &c) {
            Duplicator dup(16, c);
            dup.load(BitVec::fromWord(word, 16));
            std::uint64_t acc = 0;
            for (int r = 0; r < 4; ++r)
                acc = acc * 31 + dup.duplicate().toWord();
            acc = acc * 31 + dup.unload().toWord();
            return acc;
        });
    }
}

TEST(FastPathEquivalence, Fp16SpecialValues)
{
    // FP16 bit patterns: NaN, +-inf, +-0, subnormals, and a spread
    // of normals — the flush-to-zero and special-case branches must
    // behave identically in both modes.
    const std::vector<std::uint16_t> specials = {
        0x7E00, // NaN
        0x7C01, // signaling-style NaN payload
        0x7C00, // +inf
        0xFC00, // -inf
        0x0000, // +0
        0x8000, // -0
        0x0001, // smallest subnormal
        0x03FF, // largest subnormal
        0x0400, // smallest normal
        0x7BFF, // largest normal
        0x3C00, // 1.0
        0xBC00, // -1.0
        0x3555, // ~0.333
        0x4248, // ~3.14
    };
    for (std::uint16_t a : specials)
        for (std::uint16_t b : specials) {
            expectModesMatch([&](LogicCounters &c) {
                DwFp16 fp(c);
                return std::uint64_t(fp.add(a, b));
            });
            expectModesMatch([&](LogicCounters &c) {
                DwFp16 fp(c);
                return std::uint64_t(fp.mul(a, b));
            });
        }
}

TEST(FastPathEquivalence, Fp16RandomArithmetic)
{
    Rng rng(47);
    for (int i = 0; i < 200; ++i) {
        const auto a = std::uint16_t(rng.below(0x10000));
        const auto b = std::uint16_t(rng.below(0x10000));
        expectModesMatch([&](LogicCounters &c) {
            DwFp16 fp(c);
            return std::uint64_t(fp.add(a, b)) |
                   (std::uint64_t(fp.mul(a, b)) << 16);
        });
    }
}

TEST(FastPathEquivalence, ProcessorDotProduct)
{
    Rng rng(53);
    std::vector<std::uint8_t> a(37), b(37);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = std::uint8_t(rng.below(256));
        b[i] = std::uint8_t(rng.below(256));
    }

    auto run = [&](bool strict, LogicCounters &counters,
                   double &energy) {
        ScopedStrictGates mode(strict);
        RmParams params;
        EnergyMeter meter;
        RmProcessor proc(params, meter);
        auto r = proc.dotProduct(a, b);
        counters = proc.counters();
        energy = meter.totalPj();
        EXPECT_EQ(r.values.size(), 1u);
        return std::uint64_t(r.values[0]) |
               (std::uint64_t(r.cycles) << 32);
    };
    LogicCounters fast_c, strict_c;
    double fast_e, strict_e;
    const std::uint64_t fast_v = run(false, fast_c, fast_e);
    const std::uint64_t strict_v = run(true, strict_c, strict_e);
    EXPECT_EQ(fast_v, strict_v);
    expectCountersEqual(fast_c, strict_c);
    EXPECT_DOUBLE_EQ(fast_e, strict_e);
}

TEST(FastPathEquivalence, ModeSwitchIsRuntime)
{
    // The mode is a runtime switch, not a build-time one: flipping
    // it mid-process changes which implementation runs without
    // changing any observable output.
    const bool prev = strictGates();
    LogicCounters c1, c2;
    DwRippleCarryAdder a1(8, c1), a2(8, c2);
    setStrictGates(false);
    auto r1 = a1.add(BitVec::fromWord(200, 8),
                     BitVec::fromWord(100, 8));
    setStrictGates(true);
    auto r2 = a2.add(BitVec::fromWord(200, 8),
                     BitVec::fromWord(100, 8));
    setStrictGates(prev);
    EXPECT_EQ(r1.sum.toWord(), r2.sum.toWord());
    EXPECT_EQ(r1.carry, r2.carry);
    expectCountersEqual(c1, c2);
}

} // namespace
} // namespace streampim
