/**
 * @file
 * Tests for the Duplicator's four-step protocol (Fig. 9).
 */

#include <gtest/gtest.h>

#include "dwlogic/duplicator.hh"

namespace streampim
{
namespace
{

TEST(Duplicator, StartsIdle)
{
    LogicCounters c;
    Duplicator dup(8, c);
    EXPECT_EQ(dup.phase(), DuplicatorStep::Idle);
    EXPECT_FALSE(dup.outputAvailable());
}

TEST(Duplicator, LoadMovesToReady)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(0xA5, 8));
    EXPECT_EQ(dup.phase(), DuplicatorStep::Ready);
    EXPECT_EQ(dup.origin().toWord(), 0xA5u);
}

TEST(Duplicator, FourStepWalkThroughPhases)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(0x3C, 8));

    dup.step();
    EXPECT_EQ(dup.phase(), DuplicatorStep::Propagate);
    dup.step();
    EXPECT_EQ(dup.phase(), DuplicatorStep::Split);
    EXPECT_TRUE(dup.outputAvailable());
    dup.step();
    EXPECT_EQ(dup.phase(), DuplicatorStep::ReturnReplica);
    dup.step();
    EXPECT_EQ(dup.phase(), DuplicatorStep::Ready);

    EXPECT_EQ(dup.takeOutput().toWord(), 0x3Cu);
    EXPECT_EQ(dup.origin().toWord(), 0x3Cu);
    EXPECT_EQ(dup.cycles(), 1u);
}

TEST(Duplicator, DuplicationIsNonDestructive)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(0x7E, 8));
    BitVec replica = dup.duplicate();
    EXPECT_EQ(replica.toWord(), 0x7Eu);
    EXPECT_EQ(dup.origin().toWord(), 0x7Eu);
}

TEST(Duplicator, RepeatedDuplicationYieldsIdenticalReplicas)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(0x99, 8));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(dup.duplicate().toWord(), 0x99u) << "replica " << i;
    EXPECT_EQ(dup.cycles(), 8u);
}

TEST(Duplicator, FanOutCountMatchesBitsPerCycle)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(0xFF, 8));
    dup.duplicate();
    // One fan-out event per bit of the word.
    EXPECT_EQ(c.fanOuts, 8u);
    // The backward replica passes the diode bit by bit.
    EXPECT_EQ(c.diodePasses, 8u);
}

TEST(Duplicator, UnloadReturnsWordAndIdles)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(0x42, 8));
    dup.duplicate();
    BitVec word = dup.unload();
    EXPECT_EQ(word.toWord(), 0x42u);
    EXPECT_EQ(dup.phase(), DuplicatorStep::Idle);
}

TEST(Duplicator, ReloadAfterUnload)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(1, 8));
    dup.unload();
    dup.load(BitVec::fromWord(2, 8));
    EXPECT_EQ(dup.duplicate().toWord(), 2u);
}

/** Property: duplication preserves every 8-bit pattern. */
class DuplicatorAllBytes : public ::testing::TestWithParam<unsigned> {};

TEST_P(DuplicatorAllBytes, RoundTrip)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(GetParam(), 8));
    EXPECT_EQ(dup.duplicate().toWord(), GetParam());
    EXPECT_EQ(dup.origin().toWord(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllByteValues, DuplicatorAllBytes,
                         ::testing::Range(0u, 256u, 13u));

TEST(DuplicatorDeath, StepWhileIdlePanics)
{
    LogicCounters c;
    Duplicator dup(8, c);
    EXPECT_DEATH(dup.step(), "idle duplicator");
}

TEST(DuplicatorDeath, DoubleLoadPanics)
{
    LogicCounters c;
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(1, 8));
    EXPECT_DEATH(dup.load(BitVec::fromWord(2, 8)), "in flight");
}

TEST(DuplicatorDeath, WidthMismatchPanics)
{
    LogicCounters c;
    Duplicator dup(8, c);
    EXPECT_DEATH(dup.load(BitVec::fromWord(1, 4)), "width");
}

} // namespace
} // namespace streampim
