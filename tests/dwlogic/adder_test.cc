/**
 * @file
 * Unit and property tests for the domain-wall adders.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dwlogic/adder.hh"

namespace streampim
{
namespace
{

TEST(DwFullAdder, TruthTable)
{
    LogicCounters c;
    DwFullAdder fa(c);
    for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
            for (int cin = 0; cin <= 1; ++cin) {
                auto r = fa.add(a, b, cin);
                int expect = a + b + cin;
                EXPECT_EQ(int(r.sum), expect & 1)
                    << a << "+" << b << "+" << cin;
                EXPECT_EQ(int(r.carry), expect >> 1)
                    << a << "+" << b << "+" << cin;
            }
        }
    }
}

TEST(DwFullAdder, UsesNineNandGatesPerBit)
{
    LogicCounters c;
    DwFullAdder fa(c);
    fa.add(true, false, true);
    EXPECT_EQ(c.gateOps, DwFullAdder::kGatesPerBit);
}

TEST(DwRippleCarryAdder, SmallSums)
{
    LogicCounters c;
    DwRippleCarryAdder rca(8, c);
    EXPECT_EQ(rca.addWords(0, 0), 0u);
    EXPECT_EQ(rca.addWords(1, 1), 2u);
    EXPECT_EQ(rca.addWords(100, 155), 255u);
    EXPECT_EQ(rca.addWords(200, 100), 300u); // carry into bit 8
}

TEST(DwRippleCarryAdder, CarryOutIsExposed)
{
    LogicCounters c;
    DwRippleCarryAdder rca(8, c);
    auto r = rca.add(BitVec::fromWord(0xFF, 8), BitVec::fromWord(1, 8));
    EXPECT_EQ(r.sum.toWord(), 0u);
    EXPECT_TRUE(r.carry);
}

TEST(DwRippleCarryAdder, CarryInWorks)
{
    LogicCounters c;
    DwRippleCarryAdder rca(8, c);
    auto r = rca.add(BitVec::fromWord(10, 8), BitVec::fromWord(20, 8),
                     true);
    EXPECT_EQ(r.sum.toWord(), 31u);
}

TEST(DwRippleCarryAdder, NarrowOperandsZeroExtend)
{
    LogicCounters c;
    DwRippleCarryAdder rca(16, c);
    auto r = rca.add(BitVec::fromWord(0xFF, 8), BitVec::fromWord(1, 4));
    EXPECT_EQ(r.sum.toWord(), 0x100u);
    EXPECT_FALSE(r.carry);
}

TEST(DwRippleCarryAdder, GateCountScalesWithWidth)
{
    LogicCounters c8;
    DwRippleCarryAdder rca8(8, c8);
    rca8.addWords(1, 2);
    LogicCounters c32;
    DwRippleCarryAdder rca32(32, c32);
    rca32.addWords(1, 2);
    EXPECT_EQ(c8.gateOps, 8u * DwFullAdder::kGatesPerBit);
    EXPECT_EQ(c32.gateOps, 32u * DwFullAdder::kGatesPerBit);
}

/** Property: RCA matches host addition for random operands. */
TEST(DwRippleCarryAdder, MatchesHostArithmetic)
{
    LogicCounters c;
    DwRippleCarryAdder rca(16, c);
    Rng rng(42);
    for (int i = 0; i < 500; ++i) {
        std::uint64_t a = rng.below(1 << 16);
        std::uint64_t b = rng.below(1 << 16);
        EXPECT_EQ(rca.addWords(a, b), a + b) << a << "+" << b;
    }
}

TEST(DwAdderTree, SingleOperandPassesThrough)
{
    LogicCounters c;
    DwAdderTree tree(1, 8, c);
    EXPECT_EQ(tree.levels(), 0u);
    EXPECT_EQ(tree.resultWidth(), 8u);
    EXPECT_EQ(tree.sumWords({42}), 42u);
}

TEST(DwAdderTree, TwoOperands)
{
    LogicCounters c;
    DwAdderTree tree(2, 8, c);
    EXPECT_EQ(tree.levels(), 1u);
    EXPECT_EQ(tree.resultWidth(), 9u);
    EXPECT_EQ(tree.sumWords({255, 255}), 510u);
}

TEST(DwAdderTree, EightOperandsFullPrecision)
{
    LogicCounters c;
    DwAdderTree tree(8, 8, c);
    EXPECT_EQ(tree.levels(), 3u);
    EXPECT_EQ(tree.resultWidth(), 11u);
    std::vector<std::uint64_t> vals(8, 255);
    EXPECT_EQ(tree.sumWords(vals), 8u * 255u);
}

TEST(DwAdderTree, OddOperandCount)
{
    LogicCounters c;
    DwAdderTree tree(5, 8, c);
    EXPECT_EQ(tree.sumWords({1, 2, 3, 4, 5}), 15u);
}

/** Property: adder tree equals host sum over random vectors. */
class AdderTreeSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(AdderTreeSweep, MatchesHostSum)
{
    auto [operands, width] = GetParam();
    LogicCounters c;
    DwAdderTree tree(operands, width, c);
    Rng rng(7 * operands + width);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint64_t> vals;
        std::uint64_t expect = 0;
        for (unsigned i = 0; i < operands; ++i) {
            vals.push_back(rng.below(std::uint64_t(1) << width));
            expect += vals.back();
        }
        EXPECT_EQ(tree.sumWords(vals), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(
    OperandWidthGrid, AdderTreeSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 7u, 8u, 16u),
                       ::testing::Values(4u, 8u, 16u)));

} // namespace
} // namespace streampim
