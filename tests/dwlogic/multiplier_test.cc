/**
 * @file
 * Tests for the domain-wall scalar multiplier (Fig. 8).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dwlogic/multiplier.hh"

namespace streampim
{
namespace
{

TEST(DwMultiplier, FourBitPaperExample)
{
    // Fig. 8 walks a 4-bit example; verify that configuration.
    LogicCounters c;
    DwMultiplier mul(4, c);
    EXPECT_EQ(mul.productWidth(), 8u);
    EXPECT_EQ(mul.multiplyWords(0xA, 0x5), 0xAu * 0x5u);
    EXPECT_EQ(mul.multiplyWords(0xF, 0xF), 225u);
}

TEST(DwMultiplier, EightBitCorners)
{
    LogicCounters c;
    DwMultiplier mul(8, c);
    EXPECT_EQ(mul.multiplyWords(0, 0), 0u);
    EXPECT_EQ(mul.multiplyWords(0, 255), 0u);
    EXPECT_EQ(mul.multiplyWords(255, 0), 0u);
    EXPECT_EQ(mul.multiplyWords(1, 255), 255u);
    EXPECT_EQ(mul.multiplyWords(255, 255), 65025u);
    EXPECT_EQ(mul.multiplyWords(16, 16), 256u);
}

TEST(DwMultiplier, PartialProductRowIsShiftedAnd)
{
    LogicCounters c;
    DwMultiplier mul(4, c);
    BitVec a = BitVec::fromWord(0b1011, 4);
    // Row 2 with b_2 = 1: a << 2.
    BitVec pp = mul.partialProduct(a, true, 2);
    EXPECT_EQ(pp.toWord(), 0b1011u << 2);
    // b_i = 0 zeroes the row.
    BitVec zero = mul.partialProduct(a, false, 2);
    EXPECT_EQ(zero.toWord(), 0u);
}

TEST(DwMultiplier, UsesDuplicatorOncePerBit)
{
    LogicCounters c;
    DwMultiplier mul(8, c);
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(7, 8));
    mul.multiply(dup, BitVec::fromWord(3, 8));
    // 8 replicas = 8 duplication cycles for an 8-bit multiply.
    EXPECT_EQ(dup.cycles(), 8u);
}

TEST(DwMultiplier, OperandSurvivesMultiplication)
{
    LogicCounters c;
    DwMultiplier mul(8, c);
    Duplicator dup(8, c);
    dup.load(BitVec::fromWord(99, 8));
    mul.multiply(dup, BitVec::fromWord(4, 8));
    EXPECT_EQ(dup.origin().toWord(), 99u);
}

/** Property: exhaustive stride sample over the full 8-bit grid. */
class MultiplierGrid
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(MultiplierGrid, MatchesHostMultiply)
{
    auto [a, b] = GetParam();
    LogicCounters c;
    DwMultiplier mul(8, c);
    EXPECT_EQ(mul.multiplyWords(a, b), std::uint64_t(a) * b);
}

INSTANTIATE_TEST_SUITE_P(
    ByteGrid, MultiplierGrid,
    ::testing::Combine(::testing::Range(0u, 256u, 51u),
                       ::testing::Range(0u, 256u, 37u)));

/** Property: random 8-bit multiplications match host arithmetic. */
TEST(DwMultiplier, RandomSweepMatchesHost)
{
    LogicCounters c;
    DwMultiplier mul(8, c);
    Rng rng(2024);
    for (int i = 0; i < 400; ++i) {
        auto a = unsigned(rng.below(256));
        auto b = unsigned(rng.below(256));
        EXPECT_EQ(mul.multiplyWords(a, b), std::uint64_t(a) * b)
            << a << "*" << b;
    }
}

TEST(DwMultiplier, SixteenBitAlsoWorks)
{
    LogicCounters c;
    DwMultiplier mul(16, c);
    EXPECT_EQ(mul.multiplyWords(1000, 2000), 2000000u);
    EXPECT_EQ(mul.multiplyWords(65535, 65535), 65535ull * 65535ull);
}

} // namespace
} // namespace streampim
