/**
 * @file
 * Tests for the binary16 extension unit, verified against host
 * float arithmetic under the documented truncation/FTZ semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hh"
#include "dwlogic/fp16.hh"

namespace streampim
{
namespace
{

/** Host reference: binary16 bits -> double. */
double
hostDecode(std::uint16_t bits)
{
    Fp16Parts p = DwFp16::unpack(bits);
    if (p.isNan())
        return std::nan("");
    double sign = p.sign ? -1.0 : 1.0;
    if (p.isInf())
        return sign * INFINITY;
    if (p.exponent == 0)
        return sign * std::ldexp(double(p.mantissa), -24);
    return sign *
           std::ldexp(1.0 + double(p.mantissa) / 1024.0,
                      p.exponent - 15);
}

/** Host reference: double -> binary16 with truncation + FTZ. */
std::uint16_t
hostEncode(double v)
{
    if (std::isnan(v))
        return 0x7C01;
    bool sign = std::signbit(v);
    v = std::fabs(v);
    if (std::isinf(v) || v >= 65536.0)
        return std::uint16_t((sign << 15) | 0x7C00);
    if (v < std::ldexp(1.0, -14)) // FTZ below normal range
        return std::uint16_t(sign << 15);
    int exp;
    double frac = std::frexp(v, &exp); // frac in [0.5, 1)
    int biased = exp - 1 + 15;
    std::uint32_t mant =
        std::uint32_t(std::floor(frac * 2048.0)) & 0x3FF;
    return std::uint16_t((sign << 15) | (biased << 10) | mant);
}

TEST(DwFp16, PackUnpackRoundTrip)
{
    for (std::uint32_t bits = 0; bits < 0x10000; bits += 257) {
        auto p = DwFp16::unpack(std::uint16_t(bits));
        EXPECT_EQ(DwFp16::pack(p), std::uint16_t(bits));
    }
}

TEST(DwFp16, SpecialValuePredicates)
{
    EXPECT_TRUE(DwFp16::unpack(0x0000).isZero());
    EXPECT_TRUE(DwFp16::unpack(0x7C00).isInf());
    EXPECT_TRUE(DwFp16::unpack(0x7C01).isNan());
    EXPECT_TRUE(DwFp16::unpack(0x0001).isSubnormal());
}

TEST(DwFp16, IntConversions)
{
    EXPECT_EQ(DwFp16::fromInt(0), 0u);
    EXPECT_DOUBLE_EQ(hostDecode(DwFp16::fromInt(1)), 1.0);
    EXPECT_DOUBLE_EQ(hostDecode(DwFp16::fromInt(255)), 255.0);
    EXPECT_DOUBLE_EQ(hostDecode(DwFp16::fromInt(1024)), 1024.0);
    EXPECT_EQ(DwFp16::toInt(DwFp16::fromInt(77)), 77u);
    EXPECT_EQ(DwFp16::toInt(DwFp16::fromInt(2048)), 2048u);
}

TEST(DwFp16, SimpleSums)
{
    LogicCounters c;
    DwFp16 fp(c);
    auto one = DwFp16::fromInt(1);
    auto two = DwFp16::fromInt(2);
    EXPECT_DOUBLE_EQ(hostDecode(fp.add(one, two)), 3.0);
    EXPECT_DOUBLE_EQ(hostDecode(fp.add(two, two)), 4.0);
}

TEST(DwFp16, AdditionCancellation)
{
    LogicCounters c;
    DwFp16 fp(c);
    auto five = DwFp16::fromInt(5);
    auto minus_five = std::uint16_t(five | 0x8000);
    EXPECT_DOUBLE_EQ(hostDecode(fp.add(five, minus_five)), 0.0);
}

TEST(DwFp16, SimpleProducts)
{
    LogicCounters c;
    DwFp16 fp(c);
    auto three = DwFp16::fromInt(3);
    auto seven = DwFp16::fromInt(7);
    EXPECT_DOUBLE_EQ(hostDecode(fp.mul(three, seven)), 21.0);
    auto half = hostEncode(0.5);
    EXPECT_DOUBLE_EQ(hostDecode(fp.mul(half, half)), 0.25);
}

TEST(DwFp16, InfAndNanPropagation)
{
    LogicCounters c;
    DwFp16 fp(c);
    auto inf = std::uint16_t(0x7C00);
    auto one = DwFp16::fromInt(1);
    EXPECT_TRUE(DwFp16::unpack(fp.add(inf, one)).isInf());
    EXPECT_TRUE(DwFp16::unpack(fp.mul(inf, one)).isInf());
    // inf - inf and 0 * inf are NaN.
    EXPECT_TRUE(DwFp16::unpack(
                    fp.add(inf, std::uint16_t(inf | 0x8000)))
                    .isNan());
    EXPECT_TRUE(DwFp16::unpack(fp.mul(inf, 0)).isNan());
}

TEST(DwFp16, OverflowSaturatesToInf)
{
    LogicCounters c;
    DwFp16 fp(c);
    auto big = hostEncode(60000.0);
    EXPECT_TRUE(DwFp16::unpack(fp.add(big, big)).isInf());
    EXPECT_TRUE(DwFp16::unpack(fp.mul(big, big)).isInf());
}

TEST(DwFp16, UnderflowFlushesToZero)
{
    LogicCounters c;
    DwFp16 fp(c);
    auto tiny = hostEncode(std::ldexp(1.0, -14));
    auto result = fp.mul(tiny, tiny);
    EXPECT_TRUE(DwFp16::unpack(result).isZero());
}

/** Property: add/mul within 1 ulp of truncating host arithmetic. */
TEST(DwFp16, MatchesHostWithinTruncation)
{
    LogicCounters c;
    DwFp16 fp(c);
    Rng rng(2718);
    int checked = 0;
    for (int i = 0; i < 2000; ++i) {
        double x = std::ldexp(1.0 + rng.uniform(),
                              int(rng.below(16)) - 8);
        double y = std::ldexp(1.0 + rng.uniform(),
                              int(rng.below(16)) - 8);
        std::uint16_t a = hostEncode(x);
        std::uint16_t b = hostEncode(y);
        double xa = hostDecode(a), yb = hostDecode(b);

        for (bool is_mul : {false, true}) {
            double exact = is_mul ? xa * yb : xa + yb;
            if (exact >= 65504.0 || exact < std::ldexp(1.0, -14))
                continue; // stay in the normal range
            std::uint16_t got =
                is_mul ? fp.mul(a, b) : fp.add(a, b);
            double got_d = hostDecode(got);
            // Truncation error is bounded by 1 ulp of the result.
            double ulp = std::ldexp(
                1.0, std::ilogb(exact) - 10);
            EXPECT_NEAR(got_d, exact, ulp * 1.01)
                << (is_mul ? "mul " : "add ") << xa << ", " << yb;
            checked++;
        }
    }
    EXPECT_GT(checked, 1000);
}

TEST(DwFp16, CountsGateActivity)
{
    LogicCounters c;
    DwFp16 fp(c);
    fp.mul(DwFp16::fromInt(9), DwFp16::fromInt(9));
    EXPECT_GT(c.gateOps, 0u);
    EXPECT_GT(c.shiftSteps, 0u);
}

} // namespace
} // namespace streampim
