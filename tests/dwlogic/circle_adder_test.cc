/**
 * @file
 * Tests for the Circle Adder accumulation protocol (Fig. 10).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dwlogic/circle_adder.hh"

namespace streampim
{
namespace
{

TEST(CircleAdder, StartsZeroed)
{
    LogicCounters c;
    CircleAdder ca(32, c);
    EXPECT_EQ(ca.accumulatorWord(), 0u);
    EXPECT_EQ(ca.phase(), CircleAdderStep::AwaitOperand);
}

TEST(CircleAdder, FourStepWalkThroughPhases)
{
    LogicCounters c;
    CircleAdder ca(16, c);
    ca.loadOperand(BitVec::fromWord(100, 16));

    ca.step();
    EXPECT_EQ(ca.phase(), CircleAdderStep::Added);
    ca.step();
    EXPECT_EQ(ca.phase(), CircleAdderStep::DiodePassed);
    ca.step();
    EXPECT_EQ(ca.phase(), CircleAdderStep::Circulated);
    EXPECT_EQ(ca.accumulatorWord(), 100u);
    ca.step();
    EXPECT_EQ(ca.phase(), CircleAdderStep::AwaitOperand);
    EXPECT_EQ(ca.accumulations(), 1u);
}

TEST(CircleAdder, AccumulatesSequence)
{
    LogicCounters c;
    CircleAdder ca(32, c);
    std::uint64_t expect = 0;
    for (std::uint64_t v : {5u, 10u, 200u, 65535u, 1u}) {
        ca.accumulateWord(v, 16);
        expect += v;
        EXPECT_EQ(ca.accumulatorWord(), expect);
    }
    EXPECT_EQ(ca.accumulations(), 5u);
}

TEST(CircleAdder, ClearResetsAccumulator)
{
    LogicCounters c;
    CircleAdder ca(32, c);
    ca.accumulateWord(123, 16);
    ca.clear();
    EXPECT_EQ(ca.accumulatorWord(), 0u);
    ca.accumulateWord(7, 16);
    EXPECT_EQ(ca.accumulatorWord(), 7u);
}

TEST(CircleAdder, OverflowIsFlaggedNotSilent)
{
    LogicCounters c;
    CircleAdder ca(8, c);
    ca.accumulateWord(200, 8);
    EXPECT_FALSE(ca.overflowed());
    ca.accumulateWord(100, 8);
    EXPECT_TRUE(ca.overflowed());
    // Wrap-around semantics in the register itself.
    EXPECT_EQ(ca.accumulatorWord(), (200u + 100u) & 0xFFu);
}

TEST(CircleAdder, ScalarAdditionBypassesAccumulator)
{
    LogicCounters c;
    CircleAdder ca(16, c);
    ca.accumulateWord(1000, 16);
    BitVec sum = ca.addScalars(BitVec::fromWord(30, 16),
                               BitVec::fromWord(12, 16));
    EXPECT_EQ(sum.toWord(), 42u);
    // The dot-product accumulator is untouched by scalar mode.
    EXPECT_EQ(ca.accumulatorWord(), 1000u);
}

TEST(CircleAdder, DotProductOfLength2000FitsIn32Bits)
{
    // Worst case of the paper's workloads: 2000 products of
    // 255*255 = 130 050 000 < 2^32.
    LogicCounters c;
    CircleAdder ca(32, c);
    for (int i = 0; i < 2000; ++i)
        ca.accumulateWord(255 * 255, 16);
    EXPECT_EQ(ca.accumulatorWord(), 2000ull * 255 * 255);
    EXPECT_FALSE(ca.overflowed());
}

/** Property: accumulating random products matches host arithmetic. */
TEST(CircleAdder, MatchesHostAccumulation)
{
    LogicCounters c;
    CircleAdder ca(32, c);
    Rng rng(123);
    std::uint64_t expect = 0;
    for (int i = 0; i < 300; ++i) {
        std::uint64_t v = rng.below(1 << 16);
        ca.accumulateWord(v, 16);
        expect += v;
    }
    EXPECT_EQ(ca.accumulatorWord(), expect);
}

TEST(CircleAdderDeath, DoubleLoadPanics)
{
    LogicCounters c;
    CircleAdder ca(16, c);
    ca.loadOperand(BitVec::fromWord(1, 16));
    ca.step();
    EXPECT_DEATH(ca.loadOperand(BitVec::fromWord(2, 16)), "occupied");
}

TEST(CircleAdderDeath, ClearMidAccumulationPanics)
{
    LogicCounters c;
    CircleAdder ca(16, c);
    ca.loadOperand(BitVec::fromWord(1, 16));
    ca.step();
    EXPECT_DEATH(ca.clear(), "mid-accumulation");
}

} // namespace
} // namespace streampim
