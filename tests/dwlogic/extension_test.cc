/**
 * @file
 * Tests for the extension units (divider, square root) the paper
 * leaves as future work (Sec. VI).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dwlogic/extension.hh"

namespace streampim
{
namespace
{

TEST(DwSubtractor, BasicDifferences)
{
    LogicCounters c;
    DwSubtractor s(8, c);
    EXPECT_EQ(s.subWords(10, 3), 7u);
    EXPECT_EQ(s.subWords(255, 255), 0u);
    EXPECT_EQ(s.subWords(0, 1), 255u); // mod 256 wrap
}

TEST(DwSubtractor, BorrowSignalsUnsignedCompare)
{
    LogicCounters c;
    DwSubtractor s(8, c);
    EXPECT_FALSE(s.sub(BitVec::fromWord(9, 8),
                       BitVec::fromWord(4, 8)).borrow);
    EXPECT_TRUE(s.sub(BitVec::fromWord(4, 8),
                      BitVec::fromWord(9, 8)).borrow);
    EXPECT_FALSE(s.sub(BitVec::fromWord(4, 8),
                       BitVec::fromWord(4, 8)).borrow);
}

TEST(DwSubtractor, UsesInvertersPlusAdder)
{
    LogicCounters c;
    DwSubtractor s(8, c);
    s.subWords(100, 50);
    // 8 NOT gates + 8 full adders x 9 NANDs.
    EXPECT_EQ(c.gateOps, 8u + 8u * DwFullAdder::kGatesPerBit);
}

/** Property: subtraction matches host mod-2^16 arithmetic. */
TEST(DwSubtractor, MatchesHost)
{
    LogicCounters c;
    DwSubtractor s(16, c);
    Rng rng(17);
    for (int i = 0; i < 300; ++i) {
        std::uint64_t a = rng.below(1 << 16);
        std::uint64_t b = rng.below(1 << 16);
        EXPECT_EQ(s.subWords(a, b), (a - b) & 0xFFFF);
    }
}

TEST(DwDivider, ExactDivisions)
{
    LogicCounters c;
    DwDivider d(8, c);
    auto r = d.divideWords(84, 7);
    EXPECT_EQ(r.quotient, 12u);
    EXPECT_EQ(r.remainder, 0u);
}

TEST(DwDivider, RemainderIsCorrect)
{
    LogicCounters c;
    DwDivider d(8, c);
    auto r = d.divideWords(100, 7);
    EXPECT_EQ(r.quotient, 14u);
    EXPECT_EQ(r.remainder, 2u);
}

TEST(DwDivider, Corners)
{
    LogicCounters c;
    DwDivider d(8, c);
    EXPECT_EQ(d.divideWords(0, 5).quotient, 0u);
    EXPECT_EQ(d.divideWords(255, 1).quotient, 255u);
    EXPECT_EQ(d.divideWords(5, 255).quotient, 0u);
    EXPECT_EQ(d.divideWords(5, 255).remainder, 5u);
}

TEST(DwDividerDeath, DivisionByZeroPanics)
{
    LogicCounters c;
    DwDivider d(8, c);
    EXPECT_DEATH(d.divideWords(5, 0), "division by zero");
}

TEST(DwDivider, IterationCountEqualsWidth)
{
    LogicCounters c;
    DwDivider d(8, c);
    EXPECT_EQ(d.iterations(), 8u);
}

/** Property: random divisions match host arithmetic. */
class DividerSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DividerSweep, MatchesHost)
{
    LogicCounters c;
    DwDivider d(8, c);
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        std::uint64_t a = rng.below(256);
        std::uint64_t b = 1 + rng.below(255);
        auto r = d.divideWords(a, b);
        EXPECT_EQ(r.quotient, a / b) << a << "/" << b;
        EXPECT_EQ(r.remainder, a % b) << a << "%" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DividerSweep,
                         ::testing::Values(1u, 2u, 3u));

TEST(DwSqrt, PerfectSquares)
{
    LogicCounters c;
    DwSqrt s(16, c);
    EXPECT_EQ(s.sqrtWord(0), 0u);
    EXPECT_EQ(s.sqrtWord(1), 1u);
    EXPECT_EQ(s.sqrtWord(144), 12u);
    EXPECT_EQ(s.sqrtWord(65025), 255u);
}

TEST(DwSqrt, FloorsNonSquares)
{
    LogicCounters c;
    DwSqrt s(16, c);
    EXPECT_EQ(s.sqrtWord(2), 1u);
    EXPECT_EQ(s.sqrtWord(143), 11u);
    EXPECT_EQ(s.sqrtWord(65535), 255u);
}

/** Property: floor(sqrt(x)) for random 16-bit inputs. */
TEST(DwSqrt, MatchesHost)
{
    LogicCounters c;
    DwSqrt s(16, c);
    Rng rng(23);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t x = rng.below(1 << 16);
        std::uint64_t r = s.sqrtWord(x);
        EXPECT_LE(r * r, x);
        EXPECT_GT((r + 1) * (r + 1), x);
    }
}

TEST(DwSqrtDeath, OddWidthPanics)
{
    LogicCounters c;
    EXPECT_DEATH(DwSqrt(7, c), "even");
}

} // namespace
} // namespace streampim
