/**
 * @file
 * Tests for the functional subarray: the Fig. 13 PIM data flow on
 * real data.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/subarray.hh"

namespace streampim
{
namespace
{

RmParams
tinyParams()
{
    RmParams p;
    p.busLanes = 8;
    p.busLengthDomains = 512;
    p.busSegmentSize = 128;
    return p;
}

FunctionalSubarray
makeSubarray()
{
    // 4 mats x (32 tracks x 128 domains) = 4 x 512 bytes.
    static RmParams p = tinyParams();
    return FunctionalSubarray(p, 4, 32, 128);
}

TEST(FunctionalSubarray, Capacity)
{
    auto s = makeSubarray();
    EXPECT_EQ(s.capacityBytes(), 4u * 512);
    EXPECT_EQ(s.mats(), 4u);
}

TEST(FunctionalSubarray, HostReadWriteAcrossMats)
{
    auto s = makeSubarray();
    std::vector<std::uint8_t> data(600); // spans mat 0 into mat 1
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 7);
    s.hostWrite(100, data);
    EXPECT_EQ(s.hostRead(100, data.size()), data);
}

TEST(FunctionalSubarray, DotProductVpc)
{
    auto s = makeSubarray();
    const std::uint32_t n = 32;
    std::vector<std::uint8_t> a(n), b(n);
    std::uint32_t expect = 0;
    Rng rng(3);
    for (std::uint32_t i = 0; i < n; ++i) {
        a[i] = std::uint8_t(rng.below(256));
        b[i] = std::uint8_t(rng.below(256));
        expect += std::uint32_t(a[i]) * b[i];
    }
    s.hostWrite(0, a);
    s.hostWrite(256, b);
    auto res = s.executeVpc(VpcKind::Mul, 0, 256, 1024, n);
    EXPECT_EQ(res.values.at(0), expect);
    EXPECT_GT(res.busCycles, 0u);
    EXPECT_GT(res.pipelineCycles, 0u);
    // The 32-bit result landed in the destination mat.
    auto out = s.hostRead(1024, 4);
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= std::uint32_t(out[i]) << (8 * i);
    EXPECT_EQ(stored, expect);
}

TEST(FunctionalSubarray, DotProductDoesNotDestroyOperands)
{
    auto s = makeSubarray();
    std::vector<std::uint8_t> a = {1, 2, 3, 4};
    std::vector<std::uint8_t> b = {5, 6, 7, 8};
    s.hostWrite(0, a);
    s.hostWrite(64, b);
    s.executeVpc(VpcKind::Mul, 0, 64, 128, 4);
    // Non-destructive read through the transfer tracks: operands
    // survive (Sec. III-E).
    EXPECT_EQ(s.hostRead(0, 4), a);
    EXPECT_EQ(s.hostRead(64, 4), b);
}

TEST(FunctionalSubarray, VectorAddVpc)
{
    auto s = makeSubarray();
    std::vector<std::uint8_t> a = {200, 100, 0, 255};
    std::vector<std::uint8_t> b = {100, 1, 0, 255};
    s.hostWrite(0, a);
    s.hostWrite(64, b);
    auto res = s.executeVpc(VpcKind::Add, 0, 64, 128, 4);
    auto out = s.hostRead(128, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], std::uint8_t(a[i] + b[i])) << i;
    // The processor produces full 9-bit sums (no overflow inside
    // the circle adder); wrap-around happens at the 8-bit store.
    EXPECT_FALSE(res.overflow);
    EXPECT_EQ(res.values.at(0), 300u);
    EXPECT_EQ(res.values.at(3), 510u);
}

TEST(FunctionalSubarray, ScalarVectorMulVpc)
{
    auto s = makeSubarray();
    std::vector<std::uint8_t> v = {1, 2, 3, 4, 5};
    std::vector<std::uint8_t> scalar = {3};
    s.hostWrite(0, v);
    s.hostWrite(64, scalar);
    s.executeVpc(VpcKind::Smul, 0, 64, 128, 5);
    auto out = s.hostRead(128, 5);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[i], std::uint8_t(3 * v[i]));
}

TEST(FunctionalSubarray, TranVpcMovesData)
{
    auto s = makeSubarray();
    std::vector<std::uint8_t> v = {9, 9, 9, 1, 2};
    s.hostWrite(0, v);
    s.executeVpc(VpcKind::Tran, 0, 0, 300, 5);
    EXPECT_EQ(s.hostRead(300, 5), v);
}

TEST(FunctionalSubarray, EnergyAccumulates)
{
    auto s = makeSubarray();
    std::vector<std::uint8_t> a = {1, 2};
    s.hostWrite(0, a);
    s.hostWrite(64, a);
    s.executeVpc(VpcKind::Mul, 0, 64, 128, 2);
    EXPECT_GT(s.energy().count(EnergyOp::PimMul), 0u);
    EXPECT_GT(s.energy().count(EnergyOp::PimAdd), 0u);
    EXPECT_GT(s.energy().count(EnergyOp::BusShift), 0u);
}

/** Property: dot products over random vectors match the host. */
class SubarrayDotSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SubarrayDotSweep, MatchesHost)
{
    auto s = makeSubarray();
    const unsigned n = GetParam();
    Rng rng(n);
    std::vector<std::uint8_t> a(n), b(n);
    std::uint32_t expect = 0;
    for (unsigned i = 0; i < n; ++i) {
        a[i] = std::uint8_t(rng.below(256));
        b[i] = std::uint8_t(rng.below(256));
        expect += std::uint32_t(a[i]) * b[i];
    }
    s.hostWrite(0, a);
    s.hostWrite(200, b);
    auto res = s.executeVpc(VpcKind::Mul, 0, 200, 400, n);
    EXPECT_EQ(res.values.at(0), expect);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SubarrayDotSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 33u,
                                           50u));

} // namespace
} // namespace streampim
