/**
 * @file
 * Tests for the DDR4 DRAM model used by the host baselines and
 * ELP2IM.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_model.hh"
#include "mem/dram.hh"

namespace streampim
{
namespace
{

TEST(DramParams, PeakBandwidthDdr42400)
{
    DramParams d;
    // 2400 MT/s x 64-bit channel = 19.2 GB/s (Table III's host).
    EXPECT_NEAR(d.peakBandwidth(), 19.2e9, 1e6);
}

TEST(DramParams, LatencyComposition)
{
    DramParams d;
    EXPECT_NEAR(d.rowMissLatencyNs(),
                d.tRpNs + d.tRcdNs + d.tClNs, 1e-12);
    EXPECT_LT(d.rowHitLatencyNs(), d.rowMissLatencyNs());
}

TEST(DramParams, RefreshOverheadIsSmall)
{
    DramParams d;
    EXPECT_GT(d.refreshOverhead(), 0.0);
    EXPECT_LT(d.refreshOverhead(), 0.1);
}

TEST(HostMemModel, DramFasterThanRmPerAccess)
{
    // A random RM access pays the average shift to align the port
    // group; DRAM pays tRP+tRCD+tCL. The RM's shift tax makes it
    // slower, which is where CPU-DRAM's 1.5x comes from.
    DramParams d;
    RmParams rm;
    auto dram = HostMemModel::forDram(d);
    auto rmm = HostMemModel::forRm(rm);
    EXPECT_GT(dram.effectiveBandwidth, rmm.effectiveBandwidth);
    EXPECT_LT(dram.effectiveBandwidth / rmm.effectiveBandwidth,
              3.0);
}

TEST(HostMemModel, RmHasNoRefresh)
{
    RmParams rm;
    EXPECT_DOUBLE_EQ(HostMemModel::forRm(rm).refreshWatts, 0.0);
    DramParams d;
    EXPECT_GT(HostMemModel::forDram(d).refreshWatts, 0.0);
}

TEST(HostMemModel, EnergiesAreComparable)
{
    // Fig. 18: "the energy consumption of DRAM-based architectures
    // is close to RM-based" — the device-level per-byte energies
    // must be the same order of magnitude.
    DramParams d;
    RmParams rm;
    double ratio = HostMemModel::forRm(rm).accessPjPerByte /
                   HostMemModel::forDram(d).accessPjPerByte;
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 4.0);
}

} // namespace
} // namespace streampim
