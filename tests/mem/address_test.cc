/**
 * @file
 * Tests for the RM address map.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/address.hh"

namespace streampim
{
namespace
{

TEST(AddressMap, FirstByte)
{
    RmParams rm;
    AddressMap map(rm);
    RmLocation loc = map.decode(0);
    EXPECT_EQ(loc.bank, 0u);
    EXPECT_EQ(loc.subarray, 0u);
    EXPECT_EQ(loc.mat, 0u);
    EXPECT_EQ(loc.trackGroup, 0u);
    EXPECT_EQ(loc.domain, 0u);
}

TEST(AddressMap, RowMajorAcrossTrackGroups)
{
    RmParams rm;
    AddressMap map(rm);
    // Consecutive bytes sit side by side across track groups at the
    // same domain position.
    RmLocation b0 = map.decode(0);
    RmLocation b1 = map.decode(1);
    EXPECT_EQ(b1.domain, b0.domain);
    EXPECT_EQ(b1.trackGroup, b0.trackGroup + 8);
    // The next row starts after bytesPerRow bytes.
    RmLocation row1 = map.decode(map.bytesPerRow());
    EXPECT_EQ(row1.domain, 1u);
    EXPECT_EQ(row1.trackGroup, 0u);
}

TEST(AddressMap, BankBoundaries)
{
    RmParams rm;
    AddressMap map(rm);
    Addr last_of_bank0 = rm.bytesPerBank() - 1;
    EXPECT_EQ(map.decode(last_of_bank0).bank, 0u);
    EXPECT_EQ(map.decode(last_of_bank0 + 1).bank, 1u);
}

TEST(AddressMap, EncodeIsInverseOfDecode)
{
    RmParams rm;
    AddressMap map(rm);
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        Addr addr = rng.below(rm.totalBytes());
        EXPECT_EQ(map.encode(map.decode(addr)), addr);
    }
}

TEST(AddressMap, GlobalSubarrayFlattening)
{
    RmParams rm;
    AddressMap map(rm);
    EXPECT_EQ(map.globalSubarray(0, 0), 0u);
    EXPECT_EQ(map.globalSubarray(1, 0), rm.subarraysPerBank);
    unsigned g = map.globalSubarray(3, 17);
    EXPECT_EQ(map.bankOfGlobal(g), 3u);
    EXPECT_EQ(map.subarrayOfGlobal(g), 17u);
}

TEST(AddressMap, PimSubarrayPredicate)
{
    RmParams rm; // 8 PIM banks of 32
    AddressMap map(rm);
    EXPECT_TRUE(map.isPimSubarray(0));
    EXPECT_TRUE(map.isPimSubarray(rm.pimSubarrays() - 1));
    EXPECT_FALSE(map.isPimSubarray(rm.pimSubarrays()));
    EXPECT_FALSE(map.isPimSubarray(rm.totalSubarrays() - 1));
}

TEST(AddressMap, SubarrayOfAddr)
{
    RmParams rm;
    AddressMap map(rm);
    EXPECT_EQ(map.subarrayOfAddr(0), 0u);
    EXPECT_EQ(map.subarrayOfAddr(rm.bytesPerSubarray()), 1u);
    EXPECT_EQ(map.subarrayOfAddr(rm.bytesPerBank()),
              rm.subarraysPerBank);
}

TEST(AddressMapDeath, BeyondCapacityPanics)
{
    RmParams rm;
    AddressMap map(rm);
    EXPECT_DEATH(map.decode(rm.totalBytes()), "capacity");
}

TEST(RmParams, TableIIIDerivedQuantities)
{
    RmParams rm;
    // 32 banks x 64 subarrays x 16 mats x 256 KiB = 8 GiB.
    EXPECT_EQ(rm.totalBytes(), 8ull << 30);
    EXPECT_EQ(rm.pimSubarrays(), 512u);
    EXPECT_EQ(rm.totalSubarrays(), 2048u);
    // 256 KiB x 8 bits / 512 tracks = 4096 domains per track.
    EXPECT_EQ(rm.domainsPerTrack(), 4096u);
    EXPECT_EQ(rm.portsPerTrack(), 64u);
    // A PIM subarray is 1/2048 of total capacity (Sec. IV-C).
    EXPECT_EQ(rm.totalBytes() / rm.bytesPerSubarray(), 2048u);
}

TEST(RmParams, TimingConversions)
{
    RmParams rm;
    EXPECT_EQ(rm.readTicks(), 3910u);
    EXPECT_EQ(rm.writeTicks(), 10270u);
    EXPECT_EQ(rm.shiftTicks(1), 2130u);
    EXPECT_EQ(rm.shiftTicks(10), 21300u);
}

TEST(RmParamsDeath, ValidationCatchesBadConfigs)
{
    RmParams rm;
    rm.pimBanks = 64;
    EXPECT_DEATH(rm.validate(), "pimBanks");

    RmParams rm2;
    rm2.busSegmentSize = 1000; // does not divide 4096
    EXPECT_DEATH(rm2.validate(), "segment");

    RmParams rm3;
    rm3.duplicators = 0;
    EXPECT_DEATH(rm3.validate(), "duplicator");
}

} // namespace
} // namespace streampim
