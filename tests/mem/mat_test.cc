/**
 * @file
 * Tests for the functional mat model (save/transfer tracks).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/mat.hh"

namespace streampim
{
namespace
{

Mat
smallMat(bool transfer = true)
{
    // 16 tracks x 128 domains = 256 bytes.
    return Mat(16, 128, 64, transfer);
}

TEST(Mat, CapacityFromGeometry)
{
    Mat m = smallMat();
    EXPECT_EQ(m.capacityBytes(), 16u / 8 * 128);
    EXPECT_EQ(m.tracks(), 16u);
    EXPECT_TRUE(m.hasTransferTracks());
}

TEST(Mat, WriteReadRoundTrip)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {1, 2, 3, 250, 0, 255};
    m.writeBytes(10, data);
    auto out = m.readBytes(10, data.size());
    EXPECT_EQ(out, data);
}

TEST(Mat, PortOperationsAreCounted)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data(5, 7);
    m.writeBytes(0, data);
    EXPECT_EQ(m.activity().portWrites, 5u);
    m.readBytes(0, 5);
    EXPECT_EQ(m.activity().portReads, 5u);
}

TEST(Mat, NonDestructiveReadPreservesData)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {11, 22, 33, 44};
    m.writeBytes(64, data);

    auto copy = m.copyOutViaTransferTracks(64, data.size());
    EXPECT_EQ(copy, data);
    // The save tracks still hold the data.
    EXPECT_EQ(m.readBytes(64, data.size()), data);
    // And the fan-out mechanism was exercised, not the ports.
    EXPECT_EQ(m.activity().fanOutCopies, 8u * data.size());
}

TEST(Mat, DestructiveShiftOutVacatesDomains)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {0xAA, 0xBB};
    m.writeBytes(0, data);
    auto out = m.shiftOutDestructive(0, 2);
    EXPECT_EQ(out, data);
    auto after = m.readBytes(0, 2);
    EXPECT_EQ(after, (std::vector<std::uint8_t>{0, 0}));
}

TEST(Mat, ShiftInDepositsWithoutPortWrites)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {9, 8, 7};
    auto writes_before = m.activity().portWrites;
    m.shiftInFromBus(32, data);
    EXPECT_EQ(m.activity().portWrites, writes_before);
    EXPECT_EQ(m.readBytes(32, 3), data);
}

TEST(MatDeath, NonDestructiveReadNeedsTransferTracks)
{
    Mat m = smallMat(false);
    std::vector<std::uint8_t> data = {1};
    m.writeBytes(0, data);
    EXPECT_DEATH(m.copyOutViaTransferTracks(0, 1),
                 "transfer");
}

TEST(MatDeath, OutOfRangeAccessPanics)
{
    Mat m = smallMat();
    EXPECT_DEATH(m.readBytes(m.capacityBytes() - 1, 2), "capacity");
}

TEST(MatDeath, BadTrackCountPanics)
{
    EXPECT_DEATH(Mat(12, 128, 64, false), "multiple of 8");
}

/** Property: random write/read round-trips at random offsets. */
TEST(Mat, RandomRoundTrips)
{
    Mat m = smallMat();
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint64_t len = 1 + rng.below(16);
        std::uint64_t off = rng.below(m.capacityBytes() - len);
        std::vector<std::uint8_t> data(len);
        for (auto &v : data)
            v = std::uint8_t(rng.below(256));
        m.writeBytes(off, data);
        EXPECT_EQ(m.readBytes(off, len), data);
    }
}

} // namespace
} // namespace streampim
