/**
 * @file
 * Tests for the functional mat model (save/transfer tracks), its
 * per-track wear accounting and the spare-track remap machinery.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/mat.hh"
#include "rm/fault_injector.hh"

namespace streampim
{
namespace
{

Mat
smallMat(bool transfer = true)
{
    // 16 tracks x 128 domains = 256 bytes.
    return Mat(16, 128, 64, transfer);
}

TEST(Mat, CapacityFromGeometry)
{
    Mat m = smallMat();
    EXPECT_EQ(m.capacityBytes(), 16u / 8 * 128);
    EXPECT_EQ(m.tracks(), 16u);
    EXPECT_TRUE(m.hasTransferTracks());
}

TEST(Mat, WriteReadRoundTrip)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {1, 2, 3, 250, 0, 255};
    m.writeBytes(10, data);
    auto out = m.readBytes(10, data.size());
    EXPECT_EQ(out, data);
}

TEST(Mat, PortOperationsAreCounted)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data(5, 7);
    m.writeBytes(0, data);
    EXPECT_EQ(m.activity().portWrites, 5u);
    m.readBytes(0, 5);
    EXPECT_EQ(m.activity().portReads, 5u);
}

TEST(Mat, NonDestructiveReadPreservesData)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {11, 22, 33, 44};
    m.writeBytes(64, data);

    auto copy = m.copyOutViaTransferTracks(64, data.size());
    EXPECT_EQ(copy, data);
    // The save tracks still hold the data.
    EXPECT_EQ(m.readBytes(64, data.size()), data);
    // And the fan-out mechanism was exercised, not the ports.
    EXPECT_EQ(m.activity().fanOutCopies, 8u * data.size());
}

TEST(Mat, DestructiveShiftOutVacatesDomains)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {0xAA, 0xBB};
    m.writeBytes(0, data);
    auto out = m.shiftOutDestructive(0, 2);
    EXPECT_EQ(out, data);
    auto after = m.readBytes(0, 2);
    EXPECT_EQ(after, (std::vector<std::uint8_t>{0, 0}));
}

TEST(Mat, ShiftInDepositsWithoutPortWrites)
{
    Mat m = smallMat();
    std::vector<std::uint8_t> data = {9, 8, 7};
    auto writes_before = m.activity().portWrites;
    m.shiftInFromBus(32, data);
    EXPECT_EQ(m.activity().portWrites, writes_before);
    EXPECT_EQ(m.readBytes(32, 3), data);
}

TEST(MatDeath, NonDestructiveReadNeedsTransferTracks)
{
    Mat m = smallMat(false);
    std::vector<std::uint8_t> data = {1};
    m.writeBytes(0, data);
    EXPECT_DEATH(m.copyOutViaTransferTracks(0, 1),
                 "transfer");
}

TEST(MatDeath, OutOfRangeAccessPanics)
{
    Mat m = smallMat();
    EXPECT_DEATH(m.readBytes(m.capacityBytes() - 1, 2), "capacity");
}

TEST(MatDeath, BadTrackCountPanics)
{
    EXPECT_DEATH(Mat(12, 128, 64, false), "multiple of 8");
}

TEST(MatWearTest, DepositsAreCountedWithoutAnInjector)
{
    Mat m = smallMat();
    EXPECT_EQ(m.wear().deposits, 0u);
    // 16 tracks = 2 bytes per row: offsets 0 and 2 share tracks 0-7
    // (domains 0 and 1), offset 1 lives on tracks 8-15. Every byte
    // written nucleates 8 domains, one per bit track.
    std::vector<std::uint8_t> data(4, 0x5A);
    m.writeBytes(0, data);
    MatWear w = m.wear();
    EXPECT_EQ(w.deposits, 4u * 8u);
    EXPECT_EQ(w.maxTrackWear, 2u); // two domains per track group
    EXPECT_EQ(w.remaps, 0u);
    EXPECT_EQ(w.sparesTotal, 0u);

    // The shift-based deposit path wears tracks the same way.
    m.shiftInFromBus(4, data);
    EXPECT_EQ(m.wear().deposits, 8u * 8u);
}

TEST(MatWearTest, SpareTracksAreNotAddressable)
{
    Mat m(16, 128, 64, true, 4);
    EXPECT_EQ(m.tracks(), 16u);
    EXPECT_EQ(m.capacityBytes(), 16u / 8 * 128);
    EXPECT_EQ(m.wear().sparesTotal, 4u);
    EXPECT_EQ(m.wear().sparesUsed, 0u);
}

/** Injector that only carries write faults (shift faults off). */
FaultInjector
writeFaultInjector(double eta, std::uint64_t seed = 99)
{
    FaultConfig cfg;
    cfg.pWrite0 = 1e-4;
    cfg.writeEndurance = eta;
    cfg.weibullShape = 6.0;
    cfg.redepositRetryBudget = 3;
    cfg.remapAfterExhaustions = 1;
    cfg.seed = seed;
    return FaultInjector(cfg);
}

/**
 * Hammer byte offset 0 (tracks 0-7, domain 0) until its tracks wear
 * out: re-deposit retries absorb the early hazard, then budget
 * exhaustions retire the worn tracks onto spares.
 */
TEST(MatWearTest, WornTracksRemapAndPreserveOtherDomains)
{
    Mat m(16, 128, 64, true, 8);
    FaultInjector inj = writeFaultInjector(300.0);
    m.setFaultInjector(&inj);

    // Sentinel data on the *other* domains of the hammered tracks:
    // a remap migrates the whole physical track, so these must
    // survive the retirement bit-exactly.
    std::vector<std::uint8_t> sentinel;
    for (unsigned i = 0; i < 10; ++i)
        sentinel.push_back(std::uint8_t(0xC0 + i));
    for (unsigned i = 0; i < 10; ++i)
        m.writeBytes(2 + 2 * i, {&sentinel[i], 1});

    std::uint8_t value = 1;
    for (int i = 0; i < 2000; ++i, ++value)
        m.writeBytes(0, {&value, 1});

    MatWear w = m.wear();
    EXPECT_GT(w.remaps, 0u);
    EXPECT_GT(w.sparesUsed, 0u);
    EXPECT_LE(w.sparesUsed, w.sparesTotal);
    EXPECT_GT(inj.stats().redeposits, 0u);
    EXPECT_GT(inj.stats().redepositExhausted, 0u);
    EXPECT_EQ(inj.stats().trackRemaps, w.remaps);

    // Detach before reading back: the readout itself must not
    // consume RNG state for this check.
    m.setFaultInjector(nullptr);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(m.readBytes(2 + 2 * i, 1)[0], sentinel[i]) << i;
}

TEST(MatWearTest, ExhaustedSparePoolFailsVisibly)
{
    // No spares at all: the first budget exhaustion has nowhere to
    // go, so commits start failing for good — visibly, through the
    // injector's counters, never silently.
    Mat m(16, 128, 64, true, 0);
    FaultInjector inj = writeFaultInjector(200.0, 7);
    m.setFaultInjector(&inj);

    std::uint8_t value = 1;
    for (int i = 0; i < 2000; ++i, ++value)
        m.writeBytes(0, {&value, 1});

    EXPECT_EQ(m.wear().remaps, 0u);
    EXPECT_GT(inj.stats().redepositExhausted, 0u);
    EXPECT_GT(inj.stats().writeFailures, 0u);
    EXPECT_EQ(inj.stats().trackRemaps, 0u);
}

TEST(MatWearTest, SameSeedSameWearTrajectory)
{
    auto run = [] {
        Mat m(16, 128, 64, true, 4);
        FaultInjector inj = writeFaultInjector(250.0, 42);
        m.setFaultInjector(&inj);
        std::uint8_t value = 3;
        for (int i = 0; i < 1500; ++i, ++value)
            m.writeBytes(0, {&value, 1});
        m.setFaultInjector(nullptr);
        return std::pair<MatWear, FaultStats>(m.wear(),
                                              inj.stats());
    };
    auto [wa, sa] = run();
    auto [wb, sb] = run();
    EXPECT_EQ(wa.deposits, wb.deposits);
    EXPECT_EQ(wa.maxTrackWear, wb.maxTrackWear);
    EXPECT_EQ(wa.remaps, wb.remaps);
    EXPECT_EQ(wa.sparesUsed, wb.sparesUsed);
    EXPECT_EQ(sa.depositPulses, sb.depositPulses);
    EXPECT_EQ(sa.redeposits, sb.redeposits);
    EXPECT_EQ(sa.writeFailures, sb.writeFailures);
}

/** Property: random write/read round-trips at random offsets. */
TEST(Mat, RandomRoundTrips)
{
    Mat m = smallMat();
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint64_t len = 1 + rng.below(16);
        std::uint64_t off = rng.below(m.capacityBytes() - len);
        std::vector<std::uint8_t> data(len);
        for (auto &v : data)
            v = std::uint8_t(rng.below(256));
        m.writeBytes(off, data);
        EXPECT_EQ(m.readBytes(off, len), data);
    }
}

} // namespace
} // namespace streampim
