/**
 * @file
 * Tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace streampim
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.nextTick(), kTickMax);
}

TEST(EventQueue, EventsRunInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        fired++;
        if (fired < 10)
            eq.scheduleIn(5, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.curTick(), 45u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { fired++; });
    eq.schedule(50, [&] { fired++; });
    bool more = eq.runUntil(20);
    EXPECT_TRUE(more);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 20u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ProcessedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.processed(), 7u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(ClockDomain, HundredMegahertzPeriod)
{
    // The paper's 100 MHz core clock = 10 ns = 10'000 ticks.
    ClockDomain clk(100e6);
    EXPECT_EQ(clk.period(), 10000u);
    EXPECT_EQ(clk.cyclesToTicks(3), 30000u);
    EXPECT_EQ(clk.ticksToCycles(25000), 2u);
    EXPECT_EQ(clk.ticksToCyclesCeil(25000), 3u);
}

TEST(ClockDomain, EdgeAlignment)
{
    ClockDomain clk(100e6);
    EXPECT_EQ(clk.edgeAtOrAfter(0), 0u);
    EXPECT_EQ(clk.edgeAtOrAfter(1), 10000u);
    EXPECT_EQ(clk.edgeAtOrAfter(10000), 10000u);
    EXPECT_EQ(clk.edgeAtOrAfter(10001), 20000u);
}

TEST(Clocked, ScheduleCyclesUsesClockPeriod)
{
    EventQueue eq;
    ClockDomain clk(100e6);
    Clocked obj(eq, clk);
    Tick fired_at = 0;
    obj.scheduleCycles(4, [&] { fired_at = eq.curTick(); });
    eq.run();
    EXPECT_EQ(fired_at, 40000u);
}

} // namespace
} // namespace streampim
