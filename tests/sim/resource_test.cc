/**
 * @file
 * Tests for the busy-until resource models.
 */

#include <gtest/gtest.h>

#include "sim/resource.hh"

namespace streampim
{
namespace
{

TEST(TickResource, BackToBackRequestsQueue)
{
    TickResource r;
    auto s1 = r.acquire(0, 100);
    EXPECT_EQ(s1.start, 0u);
    EXPECT_EQ(s1.end, 100u);
    auto s2 = r.acquire(0, 50);
    EXPECT_EQ(s2.start, 100u); // waits for the first request
    EXPECT_EQ(s2.end, 150u);
}

TEST(TickResource, LateArrivalStartsAtArrival)
{
    TickResource r;
    r.acquire(0, 10);
    auto s = r.acquire(500, 10);
    EXPECT_EQ(s.start, 500u);
}

TEST(TickResource, BusyTicksAccumulate)
{
    TickResource r;
    r.acquire(0, 10);
    r.acquire(0, 30);
    EXPECT_EQ(r.busyTicks(), 40u);
}

TEST(TickResource, BlockUntilPushesFreeTime)
{
    TickResource r;
    r.blockUntil(200);
    auto s = r.acquire(0, 10);
    EXPECT_EQ(s.start, 200u);
    // blockUntil never moves time backwards.
    r.blockUntil(50);
    EXPECT_EQ(r.freeAt(), 210u);
}

TEST(SlotPool, ParallelSlotsServeConcurrently)
{
    SlotPool pool(2);
    auto a = pool.acquire(0, 100);
    auto b = pool.acquire(0, 100);
    auto c = pool.acquire(0, 100);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u);   // second slot
    EXPECT_EQ(c.start, 100u); // waits for a slot
}

TEST(SlotPool, PicksEarliestFreeSlot)
{
    SlotPool pool(2);
    pool.acquire(0, 100);
    pool.acquire(0, 10);
    auto s = pool.acquire(0, 5);
    EXPECT_EQ(s.start, 10u);
    EXPECT_EQ(pool.earliestFree(), 15u);
}

TEST(PipelineResource, SteadyStateThroughputIsII)
{
    PipelineResource p;
    // 10 elements, II = 4 ticks, depth = 20 ticks.
    auto s = p.stream(0, 10, 4, 20);
    EXPECT_EQ(s.start, 0u);
    EXPECT_EQ(s.end, 9u * 4 + 20); // last admit + depth
}

TEST(PipelineResource, ConsecutiveStreamsRespectAdmissionRate)
{
    PipelineResource p;
    p.stream(0, 10, 4, 20);
    auto s2 = p.stream(0, 1, 4, 20);
    // Next admission slot is right after the 10th element's.
    EXPECT_EQ(s2.start, 10u * 4);
}

TEST(PipelineResource, SingleElementLatencyIsDepth)
{
    PipelineResource p;
    auto s = p.stream(100, 1, 4, 20);
    EXPECT_EQ(s.start, 100u);
    EXPECT_EQ(s.end, 120u);
}

TEST(PipelineResourceDeath, ZeroElementsPanics)
{
    PipelineResource p;
    EXPECT_DEATH(p.stream(0, 0, 1, 1), "zero elements");
}

} // namespace
} // namespace streampim
