/**
 * @file
 * Tests for the closed-form processor timing model.
 */

#include <gtest/gtest.h>

#include "processor/timing.hh"

namespace streampim
{
namespace
{

RmParams
withDuplicators(unsigned d)
{
    RmParams p;
    p.duplicators = d;
    return p;
}

TEST(ProcessorTiming, MultiplyIIFromDuplicators)
{
    // ceil(8 / d) cycles per element (Sec. III-C).
    EXPECT_EQ(ProcessorTiming(withDuplicators(1)).multiplyII(), 8u);
    EXPECT_EQ(ProcessorTiming(withDuplicators(2)).multiplyII(), 4u);
    EXPECT_EQ(ProcessorTiming(withDuplicators(3)).multiplyII(), 3u);
    EXPECT_EQ(ProcessorTiming(withDuplicators(4)).multiplyII(), 2u);
    EXPECT_EQ(ProcessorTiming(withDuplicators(8)).multiplyII(), 1u);
    EXPECT_EQ(ProcessorTiming(withDuplicators(16)).multiplyII(), 1u);
}

TEST(ProcessorTiming, AdderTreeLevels)
{
    // 8 partial products -> 3 levels.
    EXPECT_EQ(ProcessorTiming::adderTreeLevels(), 3u);
}

TEST(ProcessorTiming, DotDepthComposition)
{
    ProcessorTiming t(withDuplicators(2));
    // split(1) + dup(4) + mul(1) + tree(3) + circle(1) = 10.
    EXPECT_EQ(t.dotDepth(), 10u);
}

TEST(ProcessorTiming, DotProductCycles)
{
    ProcessorTiming t(withDuplicators(2));
    EXPECT_EQ(t.dotProductCycles(0), 0u);
    EXPECT_EQ(t.dotProductCycles(1), t.dotDepth());
    EXPECT_EQ(t.dotProductCycles(100),
              t.dotDepth() + 99 * t.multiplyII());
}

TEST(ProcessorTiming, VectorAddStreamsAtOnePerCycle)
{
    ProcessorTiming t(withDuplicators(2));
    EXPECT_EQ(t.addII(), 1u);
    EXPECT_EQ(t.vectorAddCycles(1), t.addDepth());
    EXPECT_EQ(t.vectorAddCycles(50), t.addDepth() + 49);
}

TEST(ProcessorTiming, ScalarVectorMulSkipsCircleAdder)
{
    ProcessorTiming t(withDuplicators(2));
    EXPECT_EQ(t.scalarVectorMulCycles(1), t.dotDepth() - 1);
}

TEST(ProcessorTiming, BatchKeepsPipelineFull)
{
    ProcessorTiming t(withDuplicators(2));
    // A batch of k VPCs of n elements costs one fill plus steady
    // state.
    Cycle one = t.dotProductCycles(20);
    EXPECT_EQ(t.batchCycles(1, 20, one, t.multiplyII()), one);
    EXPECT_EQ(t.batchCycles(5, 20, one, t.multiplyII()),
              one + 4 * 20 * t.multiplyII());
    EXPECT_EQ(t.batchCycles(0, 20, one, t.multiplyII()), 0u);
}

TEST(ProcessorTiming, MoreDuplicatorsNeverSlower)
{
    Cycle prev = ~Cycle(0);
    for (unsigned d : {1u, 2u, 4u, 8u}) {
        Cycle c = ProcessorTiming(withDuplicators(d))
                      .dotProductCycles(1000);
        EXPECT_LE(c, prev);
        prev = c;
    }
}

} // namespace
} // namespace streampim
