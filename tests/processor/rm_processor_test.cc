/**
 * @file
 * Tests for the bit-accurate RM processor.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "processor/rm_processor.hh"

namespace streampim
{
namespace
{

struct Fixture
{
    RmParams params;
    EnergyMeter meter;
    RmProcessor proc{params, meter};
};

TEST(RmProcessor, DotProductMatchesHost)
{
    Fixture f;
    std::array<std::uint8_t, 5> a = {1, 2, 3, 4, 5};
    std::array<std::uint8_t, 5> b = {10, 20, 30, 40, 50};
    auto r = f.proc.dotProduct(a, b);
    EXPECT_EQ(r.values.at(0), 10u + 40 + 90 + 160 + 250);
    EXPECT_FALSE(r.overflow);
}

TEST(RmProcessor, DotProductCyclesFollowClosedForm)
{
    Fixture f;
    std::vector<std::uint8_t> a(37, 3), b(37, 7);
    auto r = f.proc.dotProduct(a, b);
    EXPECT_EQ(r.cycles, f.proc.timing().dotProductCycles(37));
}

TEST(RmProcessor, DotProductEnergyPerElement)
{
    Fixture f;
    std::vector<std::uint8_t> a(10, 1), b(10, 1);
    f.proc.dotProduct(a, b);
    EXPECT_EQ(f.meter.count(EnergyOp::PimMul), 10u);
    EXPECT_EQ(f.meter.count(EnergyOp::PimAdd), 10u);
    EXPECT_NEAR(f.meter.energyPj(EnergyOp::PimMul),
                10 * f.params.pimMulPj, 1e-9);
}

TEST(RmProcessor, ScalarVectorMulFullPrecision)
{
    Fixture f;
    std::vector<std::uint8_t> v = {0, 1, 128, 255};
    auto r = f.proc.scalarVectorMul(255, v);
    EXPECT_EQ(r.values.at(0), 0u);
    EXPECT_EQ(r.values.at(1), 255u);
    EXPECT_EQ(r.values.at(2), 255u * 128);
    EXPECT_EQ(r.values.at(3), 255u * 255);
}

TEST(RmProcessor, VectorAddProducesNineBitSums)
{
    Fixture f;
    std::vector<std::uint8_t> a = {255, 0, 128};
    std::vector<std::uint8_t> b = {255, 0, 128};
    auto r = f.proc.vectorAdd(a, b);
    EXPECT_EQ(r.values.at(0), 510u);
    EXPECT_EQ(r.values.at(1), 0u);
    EXPECT_EQ(r.values.at(2), 256u);
}

TEST(RmProcessor, CountersAccumulateAcrossOperations)
{
    Fixture f;
    std::vector<std::uint8_t> a(4, 2), b(4, 3);
    f.proc.dotProduct(a, b);
    auto gates_after_dot = f.proc.counters().gateOps;
    EXPECT_GT(gates_after_dot, 0u);
    f.proc.vectorAdd(a, b);
    EXPECT_GT(f.proc.counters().gateOps, gates_after_dot);
}

TEST(RmProcessor, LongDotProductAccumulates32Bits)
{
    Fixture f;
    std::vector<std::uint8_t> a(3000, 255), b(3000, 255);
    auto r = f.proc.dotProduct(a, b);
    EXPECT_EQ(r.values.at(0), 3000u * 255 * 255);
    EXPECT_FALSE(r.overflow);
}

TEST(RmProcessorDeath, MismatchedLengthsPanic)
{
    Fixture f;
    std::vector<std::uint8_t> a(3), b(4);
    EXPECT_DEATH(f.proc.dotProduct(a, b), "mismatch");
    EXPECT_DEATH(f.proc.vectorAdd(a, b), "mismatch");
}

/** Property: random dot products match host arithmetic. */
class ProcessorDotSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ProcessorDotSweep, MatchesHost)
{
    Fixture f;
    Rng rng(GetParam() * 31);
    std::vector<std::uint8_t> a(GetParam()), b(GetParam());
    std::uint32_t expect = 0;
    for (unsigned i = 0; i < GetParam(); ++i) {
        a[i] = std::uint8_t(rng.below(256));
        b[i] = std::uint8_t(rng.below(256));
        expect += std::uint32_t(a[i]) * b[i];
    }
    EXPECT_EQ(f.proc.dotProduct(a, b).values.at(0), expect);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ProcessorDotSweep,
                         ::testing::Values(1u, 2u, 5u, 16u, 64u,
                                           100u));

} // namespace
} // namespace streampim
